package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/service"
)

func TestChunkedUploadFanout(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	up, err := g.BeginUpload(ctx, "m", n, n)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if !strings.HasPrefix(up.Upload, "gw-") {
		t.Fatalf("gateway token not minted: %q", up.Upload)
	}
	// Ship the matrix in two row-range chunks.
	var lo, hi [][3]int64
	for _, e := range wire.Entries {
		if e[0] < int64(n/2) {
			lo = append(lo, e)
		} else {
			hi = append(hi, e)
		}
	}
	if _, err := g.AppendChunk(ctx, "m", up.Upload, 0, n/2, lo); err != nil {
		t.Fatalf("append lo: %v", err)
	}
	info, err := g.AppendChunk(ctx, "m", up.Upload, n/2, n, hi)
	if err != nil {
		t.Fatalf("append hi: %v", err)
	}
	if info.Entries != len(wire.Entries) || info.Chunks != 2 {
		t.Fatalf("aggregated upload info wrong: %+v", info)
	}
	placed, err := g.CommitUpload(ctx, "m", up.Upload)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if len(placed.Replicas) != 2 || placed.NNZ != len(wire.Entries) {
		t.Fatalf("placement after chunked commit wrong: %+v", placed)
	}
	for _, addr := range placed.Replicas {
		if !byAddr[addr].holds("m") {
			t.Fatalf("replica %s missing the committed matrix", addr)
		}
	}
	res, err := g.Estimate(ctx, exactReq("m", n))
	if err != nil || res.Estimate != sum {
		t.Fatalf("estimate after chunked commit: res=%v err=%v", res, err)
	}
	// The consumed token is gone.
	if _, err := g.CommitUpload(ctx, "m", up.Upload); !errors.Is(err, service.ErrUploadNotFound) {
		t.Fatalf("re-commit of consumed token: %v", err)
	}
}

func TestChunkedUploadAbort(t *testing.T) {
	n := 4
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	up, err := g.BeginUpload(ctx, "m", n, n)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := g.AppendChunk(ctx, "m", up.Upload, 0, n, identWire(n).Entries); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := g.AbortUpload(ctx, "m", up.Upload); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if err := g.AbortUpload(ctx, "m", up.Upload); !errors.Is(err, service.ErrUploadNotFound) {
		t.Fatalf("double abort: %v", err)
	}
	// Nothing committed anywhere, and the backends' staged legs are
	// consumed (their upload stats show the aborts).
	if len(g.Matrices()) != 0 {
		t.Fatal("aborted upload entered the placement table")
	}
	if st := b1.engine.Stats().Uploads; st.Aborted == 0 {
		t.Fatalf("backend leg not aborted: %+v", st)
	}
}

// TestChunkedAppendFailureAbortsUpload pins the divergence rule: a
// chunk only some replicas would accept must kill the whole upload,
// because a resend would be a duplicate on the replicas that took it.
func TestChunkedAppendFailureAbortsUpload(t *testing.T) {
	n := 4
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	up, err := g.BeginUpload(ctx, "m", n, n)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	// Out-of-range entries: every backend rejects the chunk, the
	// gateway aborts the upload rather than leaving it resendable.
	bad := [][3]int64{{int64(n + 1), 0, 1}}
	if _, err := g.AppendChunk(ctx, "m", up.Upload, 0, n, bad); err == nil {
		t.Fatal("bad chunk accepted")
	}
	if _, err := g.AppendChunk(ctx, "m", up.Upload, 0, n, identWire(n).Entries); !errors.Is(err, service.ErrUploadNotFound) {
		t.Fatalf("upload survived a failed append: %v", err)
	}
}

func TestChunkedCommitAllOrNothing(t *testing.T) {
	n := 4
	good := startBackend(t)
	// A backend that stages chunks like a real engine but refuses to
	// commit: real handler underneath, commit op intercepted.
	realEngine := service.NewEngine(service.Config{Workers: 2, Shards: 1})
	t.Cleanup(realEngine.Close)
	real := service.NewHandler(realEngine)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/chunks") {
			body, _ := io.ReadAll(r.Body)
			var req service.ChunkRequest
			_ = json.Unmarshal(body, &req)
			if req.Op == "commit" {
				http.Error(w, `{"error":"commit refused"}`, http.StatusInternalServerError)
				return
			}
			r.Body = io.NopCloser(strings.NewReader(string(body)))
			r.ContentLength = int64(len(body))
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(bad.Close)

	g := newTestGateway(t, 2, good.addr, bad.URL)
	ctx := context.Background()
	up, err := g.BeginUpload(ctx, "m", n, n)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := g.AppendChunk(ctx, "m", up.Upload, 0, n, identWire(n).Entries); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := g.CommitUpload(ctx, "m", up.Upload); err == nil {
		t.Fatal("commit with a refusing replica succeeded")
	}
	// All-or-nothing: the good replica's committed copy was torn down.
	if good.holds("m") {
		t.Fatal("partial commit left a copy on the good replica")
	}
	if len(g.Matrices()) != 0 {
		t.Fatal("failed commit entered the placement table")
	}
}

func TestUploadTTLGC(t *testing.T) {
	b1 := startBackend(t)
	g := New(Config{
		Backends:      []string{b1.addr},
		Replication:   1,
		ProbeInterval: 20 * time.Millisecond,
		UploadTTL:     30 * time.Millisecond,
	})
	t.Cleanup(g.Close)
	ctx := context.Background()
	up, err := g.BeginUpload(ctx, "m", 4, 4)
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	// The next upload operation runs the lazy GC; the stale token must
	// be gone.
	if _, err := g.AppendChunk(ctx, "m", up.Upload, 0, 4, nil); !errors.Is(err, service.ErrUploadNotFound) {
		t.Fatalf("expired upload still alive: %v", err)
	}
}

func TestBatchScatterGather(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	reqs := make([]service.Request, 20)
	for i := range reqs {
		reqs[i] = exactReq("m", n)
		seed := uint64(1000 + i)
		reqs[i].Seed = &seed
	}
	// One query against an unknown matrix fails in its item, not the
	// call.
	reqs[7] = exactReq("ghost", n)
	items, err := g.EstimateBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(items) != len(reqs) {
		t.Fatalf("got %d items for %d queries", len(items), len(reqs))
	}
	for i, item := range items {
		if i == 7 {
			if item.Error == "" || item.Result != nil {
				t.Fatalf("ghost query item: %+v", item)
			}
			continue
		}
		if item.Error != "" || item.Result == nil {
			t.Fatalf("item %d failed: %+v", i, item)
		}
		// Order check: the pinned seed is echoed per result.
		if item.Result.Seed != uint64(1000+i) {
			t.Fatalf("item %d out of order: seed %d", i, item.Result.Seed)
		}
		if item.Result.Estimate != sum {
			t.Fatalf("item %d estimate = %v, want %v", i, item.Result.Estimate, sum)
		}
	}
	// The scatter spread sub-batches across both replicas.
	served := 0
	for _, addr := range info.Replicas {
		if byAddr[addr].engine.Stats().Requests > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("batch scattered to %d of %d replicas", served, len(info.Replicas))
	}
	if g.Stats().Batches == 0 {
		t.Fatal("batch counter not bumped")
	}
	if _, err := g.EstimateBatch(ctx, nil); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestBatchFailoverFallback(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	byAddr[info.Replicas[0]].stop()
	reqs := make([]service.Request, 12)
	for i := range reqs {
		reqs[i] = exactReq("m", n)
	}
	items, err := g.EstimateBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch with a dead replica: %v", err)
	}
	for i, item := range items {
		if item.Error != "" || item.Result == nil || item.Result.Estimate != sum {
			t.Fatalf("item %d not absorbed by failover: %+v", i, item)
		}
	}
}
