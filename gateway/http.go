package gateway

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/metrics"
	"repro/service"
)

// NewHandler exposes the gateway as a JSON API. The front routes
// mirror the backend service API one for one — a service.Client
// pointed at a gateway works unchanged — plus the admin surface:
//
//	PUT    /matrix/{name}           replicated upload (all-or-nothing across R replicas)
//	DELETE /matrix/{name}           remove a matrix from every replica
//	GET    /matrices                placed matrices with their replica sets
//	POST   /matrices/{name}/chunks  replicated chunked upload: begin/append/commit/abort
//	PATCH  /matrices/{name}/rows    replicated row update (all-or-nothing, wire copy retained)
//	POST   /estimate                route to the least-busy healthy replica, failover on error
//	POST   /estimate/batch          scatter sub-batches across replicas, gather in order
//	GET    /stats                   gateway + per-backend counters
//	GET    /metrics                 Prometheus text-format exposition
//	GET    /healthz                 gateway liveness
//	GET    /admin/backends          list the pool with health and counters
//	POST   /admin/backends          {"op":"add"|"drain"|"remove","addr":…} with rebalance
//
// docs/API.md is the complete reference.
func NewHandler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		var m service.Matrix
		if err := service.DecodeJSON(w, r, &m); err != nil {
			writeError(w, err)
			return
		}
		info, err := g.PutMatrix(r.Context(), r.PathValue("name"), m)
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := g.DeleteMatrix(r.Context(), r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
	})
	mux.HandleFunc("GET /matrices", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Matrices())
	})
	mux.HandleFunc("POST /matrices/{name}/chunks", func(w http.ResponseWriter, r *http.Request) {
		var req service.ChunkRequest
		if err := service.DecodeJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		name := r.PathValue("name")
		switch req.Op {
		case "begin":
			info, err := g.BeginUpload(r.Context(), name, req.Rows, req.Cols)
			if err != nil {
				writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "append":
			info, err := g.AppendChunk(r.Context(), name, req.Upload, req.RowStart, req.RowEnd, req.Entries)
			if err != nil {
				writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "commit":
			info, err := g.CommitUpload(r.Context(), name, req.Upload)
			if err != nil {
				writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "abort":
			if err := g.AbortUpload(r.Context(), name, req.Upload); err != nil {
				writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, map[string]string{"aborted": req.Upload})
		default:
			writeError(w, fmt.Errorf("%w: unknown chunk op %q", service.ErrBadRequest, req.Op))
		}
	})
	mux.HandleFunc("PATCH /matrices/{name}/rows", func(w http.ResponseWriter, r *http.Request) {
		var req service.UpdateRequest
		if err := service.DecodeJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		rep, err := g.UpdateRows(r.Context(), r.PathValue("name"), req)
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		if err := service.DecodeJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		res, err := g.Estimate(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /estimate/batch", func(w http.ResponseWriter, r *http.Request) {
		var req service.BatchRequest
		if err := service.DecodeJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		items, err := g.EstimateBatch(r.Context(), req.Queries)
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, service.BatchResponse{Results: items})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Stats())
	})
	mux.Handle("GET /metrics", metrics.Handler(g.Metrics()))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /admin/backends", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Backends())
	})
	mux.HandleFunc("POST /admin/backends", func(w http.ResponseWriter, r *http.Request) {
		var req AdminRequest
		if err := service.DecodeJSON(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		var rep RebalanceReport
		var err error
		switch req.Op {
		case "add":
			rep, err = g.AddBackend(r.Context(), req.Addr)
		case "drain":
			rep, err = g.DrainBackend(r.Context(), req.Addr)
		case "remove":
			rep, err = g.RemoveBackend(r.Context(), req.Addr)
		default:
			err = fmt.Errorf("%w: unknown admin op %q", service.ErrBadRequest, req.Op)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, rep)
	})
	return mux
}

// AdminRequest is the body of POST /admin/backends: one pool change,
// selected by Op.
type AdminRequest struct {
	// Op is "add", "drain", or "remove".
	Op string `json:"op"`
	// Addr is the backend base URL the operation targets.
	Addr string `json:"addr"`
}

// writeError maps gateway and backend errors to HTTP statuses. A
// backend's answered error (an APIError a query was returned without
// failover) passes through with its original status and message;
// gateway-level conditions get their own statuses (no eligible
// backends → 503, all replicas failed → 502, unknown backend → 404);
// everything else falls through to the service package's mapping.
func writeError(w http.ResponseWriter, err error) {
	var apiErr *service.APIError
	switch {
	case errors.As(err, &apiErr):
		service.WriteJSON(w, apiErr.Status, map[string]string{"error": apiErr.Message})
	case errors.Is(err, ErrNoBackends), errors.Is(err, ErrClosed):
		service.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrAllReplicasFailed):
		service.WriteJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrUnknownBackend):
		service.WriteJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	default:
		service.WriteError(w, err)
	}
}
