package gateway

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/service"
)

// NewHandler exposes the gateway as an HTTP API. The front routes
// mirror the backend service API one for one — a service.Client
// pointed at a gateway works unchanged — under the same versioned /v1
// prefix with unprefixed legacy aliases, plus the admin surface:
//
//	PUT    /v1/matrix/{name}           replicated upload (all-or-nothing across R replicas)
//	DELETE /v1/matrix/{name}           remove a matrix from every replica
//	GET    /v1/matrices                placed matrices with their replica sets
//	POST   /v1/matrices/{name}/chunks  replicated chunked upload: begin/append/commit/abort
//	PATCH  /v1/matrices/{name}/rows    replicated row update (all-or-nothing, wire copy retained)
//	POST   /v1/estimate                route to the least-busy healthy replica, failover on error
//	POST   /v1/estimate/batch          scatter sub-batches across replicas, gather in order
//	GET    /v1/stats                   gateway + per-backend counters
//	GET    /v1/metrics                 Prometheus text-format exposition
//	GET    /v1/healthz                 gateway liveness
//	GET    /v1/admin/backends          list the pool with health and counters
//	POST   /v1/admin/backends          {"op":"add"|"drain"|"remove","addr":…} with rebalance
//
// The hot endpoints negotiate the binary wire format exactly like the
// service tier (service.DecodeRequest/WriteReply), and the gateway's
// own backend clients speak binary to the pool — a binary client's
// payload travels binary end to end. docs/API.md is the complete
// reference.
func NewHandler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		mux.Handle(pattern, h)
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			panic("route pattern without method: " + pattern)
		}
		mux.Handle(method+" /v1"+path, h)
	}
	handleFunc := func(pattern string, h http.HandlerFunc) { handle(pattern, h) }
	handleFunc("PUT /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		var m service.Matrix
		if err := service.DecodeRequest(w, r, &m); err != nil {
			g.writeError(w, err)
			return
		}
		info, err := g.PutMatrix(r.Context(), r.PathValue("name"), m)
		if err != nil {
			g.writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, info)
	})
	handleFunc("DELETE /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := g.DeleteMatrix(r.Context(), r.PathValue("name")); err != nil {
			g.writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
	})
	handleFunc("GET /matrices", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Matrices())
	})
	handleFunc("POST /matrices/{name}/chunks", func(w http.ResponseWriter, r *http.Request) {
		var req service.ChunkRequest
		if err := service.DecodeRequest(w, r, &req); err != nil {
			g.writeError(w, err)
			return
		}
		name := r.PathValue("name")
		switch req.Op {
		case "begin":
			info, err := g.BeginUpload(r.Context(), name, req.Rows, req.Cols)
			if err != nil {
				g.writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "append":
			info, err := g.AppendChunk(r.Context(), name, req.Upload, req.RowStart, req.RowEnd, req.Entries)
			if err != nil {
				g.writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "commit":
			info, err := g.CommitUpload(r.Context(), name, req.Upload)
			if err != nil {
				g.writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "abort":
			if err := g.AbortUpload(r.Context(), name, req.Upload); err != nil {
				g.writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, map[string]string{"aborted": req.Upload})
		default:
			g.writeError(w, fmt.Errorf("%w: unknown chunk op %q", service.ErrBadRequest, req.Op))
		}
	})
	handleFunc("PATCH /matrices/{name}/rows", func(w http.ResponseWriter, r *http.Request) {
		var req service.UpdateRequest
		if err := service.DecodeRequest(w, r, &req); err != nil {
			g.writeError(w, err)
			return
		}
		// Writes take only the session token (consistency levels apply
		// to reads); the committed version echoes back in MP-Version so
		// a client can hand it to another consumer as a read floor.
		sess := sessionToken(r)
		rep, ver, err := g.updateRowsSLA(r.Context(), r.PathValue("name"), req, sess)
		if err != nil {
			g.writeError(w, err)
			return
		}
		if sess != "" {
			w.Header().Set("MP-Session", sess)
		}
		w.Header().Set("MP-Version", ver.String())
		service.WriteReply(w, r, http.StatusOK, rep)
	})
	handleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		if err := service.DecodeRequest(w, r, &req); err != nil {
			g.writeError(w, err)
			return
		}
		sla, sess, err := g.slaOf(r)
		if err != nil {
			g.writeError(w, err)
			return
		}
		res, ver, err := g.estimateSLA(r.Context(), req, sla, sess)
		if err != nil {
			g.writeError(w, err)
			return
		}
		if sess != "" {
			w.Header().Set("MP-Session", sess)
		}
		w.Header().Set("MP-Version", ver.String())
		service.WriteReply(w, r, http.StatusOK, res)
	})
	handleFunc("POST /estimate/batch", func(w http.ResponseWriter, r *http.Request) {
		var req service.BatchRequest
		if err := service.DecodeRequest(w, r, &req); err != nil {
			g.writeError(w, err)
			return
		}
		sla, sess, err := g.slaOf(r)
		if err != nil {
			g.writeError(w, err)
			return
		}
		items, err := g.estimateBatchSLA(r.Context(), req.Queries, sla, sess)
		if err != nil {
			g.writeError(w, err)
			return
		}
		if sess != "" {
			w.Header().Set("MP-Session", sess)
		}
		service.WriteReply(w, r, http.StatusOK, service.BatchResponse{Results: items})
	})
	handleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Stats())
	})
	handle("GET /metrics", metrics.Handler(g.Metrics()))
	handleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handleFunc("GET /admin/backends", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Backends())
	})
	handleFunc("POST /admin/backends", func(w http.ResponseWriter, r *http.Request) {
		var req AdminRequest
		if err := service.DecodeRequest(w, r, &req); err != nil {
			g.writeError(w, err)
			return
		}
		var rep RebalanceReport
		var err error
		switch req.Op {
		case "add":
			rep, err = g.AddBackend(r.Context(), req.Addr)
		case "drain":
			rep, err = g.DrainBackend(r.Context(), req.Addr)
		case "remove":
			rep, err = g.RemoveBackend(r.Context(), req.Addr)
		default:
			err = fmt.Errorf("%w: unknown admin op %q", service.ErrBadRequest, req.Op)
		}
		if err != nil {
			g.writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, rep)
	})
	return mux
}

// AdminRequest is the body of POST /admin/backends: one pool change,
// selected by Op.
type AdminRequest struct {
	// Op is "add", "drain", or "remove".
	Op string `json:"op"`
	// Addr is the backend base URL the operation targets.
	Addr string `json:"addr"`
}

// sessionToken extracts the opaque session token from ?session= or
// the MP-Session header (query wins). Tokens are client-opaque; the
// gateway never inspects them beyond map lookup.
func sessionToken(r *http.Request) string {
	if s := r.URL.Query().Get("session"); s != "" {
		return s
	}
	return r.Header.Get("MP-Session")
}

// slaOf extracts a read's consistency SLA (?consistency= or the
// MP-Consistency header; see ParseConsistency for the grammar) and its
// session token. A session-dependent level arriving without a token
// mints one, which the response echoes in MP-Session for the client to
// carry forward.
func (g *Gateway) slaOf(r *http.Request) (SLA, string, error) {
	cons := r.URL.Query().Get("consistency")
	if cons == "" {
		cons = r.Header.Get("MP-Consistency")
	}
	sla, err := ParseConsistency(cons)
	if err != nil {
		return SLA{}, "", err
	}
	sess := sessionToken(r)
	if sess == "" && (sla.Level == ConsMonotonic || sla.Level == ConsRMW) {
		sess, _ = g.sessions.get("")
	}
	return sla, sess, nil
}

// writeError is the method form the handlers use: the package mapping
// below plus a Retry-After header on sheds, so open-loop clients and
// upstream gateways back off a saturated or replica-less target
// instead of hammering it.
func (g *Gateway) writeError(w http.ResponseWriter, err error) {
	var apiErr *service.APIError
	switch {
	case errors.As(err, &apiErr) && apiErr.RetryAfter > 0:
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(apiErr.RetryAfter.Seconds()))))
	case errors.Is(err, ErrNoBackends):
		// No eligible replica right now: the prober re-admits on its
		// interval, so that is the honest earliest useful retry.
		w.Header().Set("Retry-After", strconv.Itoa(max(1, int(math.Ceil(g.cfg.ProbeInterval.Seconds())))))
	}
	writeError(w, err)
}

// writeError maps gateway and backend errors onto the uniform
// {"error":{"code","message"}} envelope. A backend's answered error
// (an APIError a query was returned without failover) passes through
// with its original status, code, and message; gateway-level
// conditions get their own statuses and codes (no eligible backends →
// 503 no_backends, all replicas failed → 502 bad_gateway, unknown
// backend → 404 unknown_backend); everything else falls through to
// the service package's mapping. WriteErrorEnvelope is the single
// emitter either way.
func writeError(w http.ResponseWriter, err error) {
	var apiErr *service.APIError
	switch {
	case errors.As(err, &apiErr):
		code := apiErr.Code
		if code == "" {
			code = "upstream"
		}
		service.WriteErrorEnvelope(w, apiErr.Status, code, apiErr.Message)
	case errors.Is(err, ErrNoBackends):
		service.WriteErrorEnvelope(w, http.StatusServiceUnavailable, "no_backends", err.Error())
	case errors.Is(err, ErrClosed):
		service.WriteErrorEnvelope(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	case errors.Is(err, ErrAllReplicasFailed):
		service.WriteErrorEnvelope(w, http.StatusBadGateway, "bad_gateway", err.Error())
	case errors.Is(err, ErrUnknownBackend):
		service.WriteErrorEnvelope(w, http.StatusNotFound, "unknown_backend", err.Error())
	default:
		service.WriteError(w, err)
	}
}
