package gateway

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/metrics"
	"repro/service"
)

// NewHandler exposes the gateway as an HTTP API. The front routes
// mirror the backend service API one for one — a service.Client
// pointed at a gateway works unchanged — under the same versioned /v1
// prefix with unprefixed legacy aliases, plus the admin surface:
//
//	PUT    /v1/matrix/{name}           replicated upload (all-or-nothing across R replicas)
//	DELETE /v1/matrix/{name}           remove a matrix from every replica
//	GET    /v1/matrices                placed matrices with their replica sets
//	POST   /v1/matrices/{name}/chunks  replicated chunked upload: begin/append/commit/abort
//	PATCH  /v1/matrices/{name}/rows    replicated row update (all-or-nothing, wire copy retained)
//	POST   /v1/estimate                route to the least-busy healthy replica, failover on error
//	POST   /v1/estimate/batch          scatter sub-batches across replicas, gather in order
//	GET    /v1/stats                   gateway + per-backend counters
//	GET    /v1/metrics                 Prometheus text-format exposition
//	GET    /v1/healthz                 gateway liveness
//	GET    /v1/admin/backends          list the pool with health and counters
//	POST   /v1/admin/backends          {"op":"add"|"drain"|"remove","addr":…} with rebalance
//
// The hot endpoints negotiate the binary wire format exactly like the
// service tier (service.DecodeRequest/WriteReply), and the gateway's
// own backend clients speak binary to the pool — a binary client's
// payload travels binary end to end. docs/API.md is the complete
// reference.
func NewHandler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		mux.Handle(pattern, h)
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			panic("route pattern without method: " + pattern)
		}
		mux.Handle(method+" /v1"+path, h)
	}
	handleFunc := func(pattern string, h http.HandlerFunc) { handle(pattern, h) }
	handleFunc("PUT /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		var m service.Matrix
		if err := service.DecodeRequest(w, r, &m); err != nil {
			writeError(w, err)
			return
		}
		info, err := g.PutMatrix(r.Context(), r.PathValue("name"), m)
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, info)
	})
	handleFunc("DELETE /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := g.DeleteMatrix(r.Context(), r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
	})
	handleFunc("GET /matrices", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Matrices())
	})
	handleFunc("POST /matrices/{name}/chunks", func(w http.ResponseWriter, r *http.Request) {
		var req service.ChunkRequest
		if err := service.DecodeRequest(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		name := r.PathValue("name")
		switch req.Op {
		case "begin":
			info, err := g.BeginUpload(r.Context(), name, req.Rows, req.Cols)
			if err != nil {
				writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "append":
			info, err := g.AppendChunk(r.Context(), name, req.Upload, req.RowStart, req.RowEnd, req.Entries)
			if err != nil {
				writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "commit":
			info, err := g.CommitUpload(r.Context(), name, req.Upload)
			if err != nil {
				writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, info)
		case "abort":
			if err := g.AbortUpload(r.Context(), name, req.Upload); err != nil {
				writeError(w, err)
				return
			}
			service.WriteJSON(w, http.StatusOK, map[string]string{"aborted": req.Upload})
		default:
			writeError(w, fmt.Errorf("%w: unknown chunk op %q", service.ErrBadRequest, req.Op))
		}
	})
	handleFunc("PATCH /matrices/{name}/rows", func(w http.ResponseWriter, r *http.Request) {
		var req service.UpdateRequest
		if err := service.DecodeRequest(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		rep, err := g.UpdateRows(r.Context(), r.PathValue("name"), req)
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteReply(w, r, http.StatusOK, rep)
	})
	handleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		if err := service.DecodeRequest(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		res, err := g.Estimate(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteReply(w, r, http.StatusOK, res)
	})
	handleFunc("POST /estimate/batch", func(w http.ResponseWriter, r *http.Request) {
		var req service.BatchRequest
		if err := service.DecodeRequest(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		items, err := g.EstimateBatch(r.Context(), req.Queries)
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteReply(w, r, http.StatusOK, service.BatchResponse{Results: items})
	})
	handleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Stats())
	})
	handle("GET /metrics", metrics.Handler(g.Metrics()))
	handleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handleFunc("GET /admin/backends", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Backends())
	})
	handleFunc("POST /admin/backends", func(w http.ResponseWriter, r *http.Request) {
		var req AdminRequest
		if err := service.DecodeRequest(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		var rep RebalanceReport
		var err error
		switch req.Op {
		case "add":
			rep, err = g.AddBackend(r.Context(), req.Addr)
		case "drain":
			rep, err = g.DrainBackend(r.Context(), req.Addr)
		case "remove":
			rep, err = g.RemoveBackend(r.Context(), req.Addr)
		default:
			err = fmt.Errorf("%w: unknown admin op %q", service.ErrBadRequest, req.Op)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		service.WriteJSON(w, http.StatusOK, rep)
	})
	return mux
}

// AdminRequest is the body of POST /admin/backends: one pool change,
// selected by Op.
type AdminRequest struct {
	// Op is "add", "drain", or "remove".
	Op string `json:"op"`
	// Addr is the backend base URL the operation targets.
	Addr string `json:"addr"`
}

// writeError maps gateway and backend errors onto the uniform
// {"error":{"code","message"}} envelope. A backend's answered error
// (an APIError a query was returned without failover) passes through
// with its original status, code, and message; gateway-level
// conditions get their own statuses and codes (no eligible backends →
// 503 no_backends, all replicas failed → 502 bad_gateway, unknown
// backend → 404 unknown_backend); everything else falls through to
// the service package's mapping. WriteErrorEnvelope is the single
// emitter either way.
func writeError(w http.ResponseWriter, err error) {
	var apiErr *service.APIError
	switch {
	case errors.As(err, &apiErr):
		code := apiErr.Code
		if code == "" {
			code = "upstream"
		}
		service.WriteErrorEnvelope(w, apiErr.Status, code, apiErr.Message)
	case errors.Is(err, ErrNoBackends):
		service.WriteErrorEnvelope(w, http.StatusServiceUnavailable, "no_backends", err.Error())
	case errors.Is(err, ErrClosed):
		service.WriteErrorEnvelope(w, http.StatusServiceUnavailable, "unavailable", err.Error())
	case errors.Is(err, ErrAllReplicasFailed):
		service.WriteErrorEnvelope(w, http.StatusBadGateway, "bad_gateway", err.Error())
	case errors.Is(err, ErrUnknownBackend):
		service.WriteErrorEnvelope(w, http.StatusNotFound, "unknown_backend", err.Error())
	default:
		service.WriteError(w, err)
	}
}
