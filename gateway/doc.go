// Package gateway is the multi-backend front tier of the estimation
// service: one Gateway owns a health-checked pool of mpserver
// backends and serves the service API across them, so a fleet looks
// like one server to clients.
//
// # Placement
//
// Matrices are placed by rendezvous (highest-random-weight) hashing on
// the matrix name with a configurable replication factor R: each
// matrix ranks every backend by a per-(backend, name) hash and lives
// on the top R. Uploads — single-body puts and the chunked
// begin/append/commit lifecycle alike — fan out to all R replicas and
// commit all-or-nothing: a partial failure tears down the copies that
// landed, so a matrix is either queryable on its full replica set or
// absent everywhere. The gateway retains each matrix's wire form and
// is the placement's source of truth; that copy is what rebalancing
// and replica repair re-upload. Row updates (UpdateRows) propagate to
// every replica and advance the retained copy in the same commit, so
// repairs after an update re-seed the patched matrix; an unreachable
// replica is dropped and re-placed from the patched copy by the
// prober's heal pass when it returns, while an answered rejection
// reverts the legs that applied the patch (all-or-nothing).
//
// # Routing
//
// Estimates route to the least-busy healthy replica and fail over to
// the next replica on transport errors (and on answered 404/502/503);
// a replica that restarted empty is re-seeded in line from the
// retained copy. Batches scatter per-backend sub-batches concurrently
// and gather items back in request order, with per-query re-routing
// when a sub-batch's backend dies mid-call. Answered client errors
// (bad parameters, over-limit bodies) never fail over — the backend
// is alive, the request is at fault.
//
// # Health and topology
//
// A background prober pings every backend's stats endpoint on
// Config.ProbeInterval, demotes failures with exponential backoff,
// and re-admits a recovering backend only after resyncing it against
// the placement table (re-seeding lost copies, deleting stragglers).
// The admin API (POST /admin/backends) adds, drains, and removes
// backends at runtime; each change rebalances affected matrices to
// their new rendezvous targets, uploading gains before dropping
// losses.
//
// # Consistency caveats
//
// Replicas are independent engines: each keeps its own sketch cache
// and seed-epoch schedule, so unpinned repeat queries may be answered
// under different epoch seeds depending on which replica serves them —
// estimates then differ within the protocol's accuracy guarantee,
// not bit-for-bit. Queries that pin a seed are bit-reproducible on
// every replica. See DESIGN.md's gateway section for the full
// lifecycle and failure semantics, and docs/API.md for the HTTP
// reference.
package gateway
