package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/service"
)

func TestParseConsistency(t *testing.T) {
	cases := []struct {
		in    string
		want  SLA
		isErr bool
	}{
		{in: "", want: SLA{Level: ConsStrong}},
		{in: "strong", want: SLA{Level: ConsStrong}},
		{in: "eventual", want: SLA{Level: ConsEventual}},
		{in: "monotonic", want: SLA{Level: ConsMonotonic}},
		{in: "rmw", want: SLA{Level: ConsRMW}},
		{in: "bounded:250ms", want: SLA{Level: ConsBounded, Bound: 250 * time.Millisecond}},
		{in: "bounded:1h", want: SLA{Level: ConsBounded, Bound: time.Hour}},
		{in: "bounded:0s", want: SLA{Level: ConsBounded}},
		{in: "bounded:", isErr: true},
		{in: "bounded:-1s", isErr: true},
		{in: "bounded:soon", isErr: true},
		{in: "linearizable", isErr: true},
		{in: "Strong", isErr: true},
	}
	for _, tc := range cases {
		got, err := ParseConsistency(tc.in)
		if tc.isErr {
			if err == nil {
				t.Errorf("ParseConsistency(%q) = %+v, want error", tc.in, got)
			} else if !errors.Is(err, service.ErrBadRequest) {
				t.Errorf("ParseConsistency(%q) error %v, want ErrBadRequest", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseConsistency(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParseConsistency(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestVersionOrdering(t *testing.T) {
	zero := version{}
	a := version{epoch: 1, seq: 2}
	b := version{epoch: 1, seq: 3}
	c := version{epoch: 2, seq: 0}
	if !zero.Less(a) || zero.Less(zero) {
		t.Fatal("zero version must precede everything and not itself")
	}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatalf("epoch-then-seq order broken: %v %v %v", a, b, c)
	}
	if !b.AtLeast(a) || !b.AtLeast(b) || a.AtLeast(b) {
		t.Fatal("AtLeast must be the complement of Less")
	}
	if a.String() != "1.2" {
		t.Fatalf("version string = %q, want 1.2", a.String())
	}
}

func TestSessionStoreFloors(t *testing.T) {
	ss := newSessionStore(time.Minute)

	tok1, _ := ss.get("")
	tok2, _ := ss.get("")
	if tok1 == tok2 || tok1 == "" {
		t.Fatalf("minted tokens must be distinct and non-empty: %q %q", tok1, tok2)
	}

	// Floors are zero with no history, track the high-water mark per
	// matrix, and never regress on an older note.
	if v := ss.floor(tok1, "m", ConsMonotonic); v != (version{}) {
		t.Fatalf("fresh monotonic floor = %v, want zero", v)
	}
	ss.noteRead(tok1, "m", version{epoch: 1, seq: 4})
	ss.noteRead(tok1, "m", version{epoch: 1, seq: 2})
	if v := ss.floor(tok1, "m", ConsMonotonic); v != (version{epoch: 1, seq: 4}) {
		t.Fatalf("monotonic floor = %v, want 1.4", v)
	}
	ss.noteWrite(tok1, "m", version{epoch: 1, seq: 7})
	if v := ss.floor(tok1, "m", ConsRMW); v != (version{epoch: 1, seq: 7}) {
		t.Fatalf("rmw floor = %v, want 1.7", v)
	}
	// Reads don't move the rmw floor and writes don't move the
	// monotonic floor; other matrices and sessions are independent.
	if v := ss.floor(tok1, "m", ConsMonotonic); v != (version{epoch: 1, seq: 4}) {
		t.Fatalf("monotonic floor moved by a write: %v", v)
	}
	if v := ss.floor(tok1, "other", ConsRMW); v != (version{}) {
		t.Fatalf("floor leaked across matrices: %v", v)
	}
	if v := ss.floor(tok2, "m", ConsRMW); v != (version{}) {
		t.Fatalf("floor leaked across sessions: %v", v)
	}
	// Unknown and empty tokens answer the zero version.
	if v := ss.floor("nope", "m", ConsRMW); v != (version{}) {
		t.Fatalf("unknown token floor = %v", v)
	}
	if v := ss.floor("", "m", ConsMonotonic); v != (version{}) {
		t.Fatalf("empty token floor = %v", v)
	}
	// Client-minted tokens work: noteWrite creates the session.
	ss.noteWrite("client-tok", "m", version{epoch: 2, seq: 1})
	if v := ss.floor("client-tok", "m", ConsRMW); v != (version{epoch: 2, seq: 1}) {
		t.Fatalf("client-minted session floor = %v, want 2.1", v)
	}
}

func TestSessionStoreTTLSweep(t *testing.T) {
	ss := newSessionStore(time.Millisecond)
	tok, _ := ss.get("")
	ss.noteWrite(tok, "m", version{epoch: 1, seq: 1})
	time.Sleep(5 * time.Millisecond)
	// The sweep is lazy: a later get pays it and evicts the idle session.
	ss.get("fresh")
	if n := ss.len(); n != 1 {
		t.Fatalf("after sweep len = %d, want 1 (the fresh session)", n)
	}
	if v := ss.floor(tok, "m", ConsRMW); v != (version{}) {
		t.Fatalf("expired session still answers floor %v", v)
	}
}

func TestSLACountersSnapshot(t *testing.T) {
	var c slaCounters
	if got := c.snapshot(); len(got) != 0 {
		t.Fatalf("empty counters snapshot = %v", got)
	}
	c.note(ConsStrong, slaHit)
	c.note(ConsStrong, slaHit)
	c.note(ConsStrong, slaCatchup)
	c.note(ConsBounded, slaMiss)
	got := c.snapshot()
	if len(got) != 2 {
		t.Fatalf("snapshot must skip untouched levels: %v", got)
	}
	if got["strong"] != (SLAStats{Hits: 2, Catchups: 1}) {
		t.Fatalf("strong stats = %+v", got["strong"])
	}
	if got["bounded"] != (SLAStats{Misses: 1}) {
		t.Fatalf("bounded stats = %+v", got["bounded"])
	}
}

// TestProbeJitterDesyncsFailedBackends is the regression test for the
// prober's lockstep re-probe herd: two backends that fail at the same
// moment must be scheduled for re-probe at distinct times, because each
// backend's backoff carries a deterministic jitter factor derived from
// its key.
func TestProbeJitterDesyncsFailedBackends(t *testing.T) {
	// Fixed dead addresses (reserved low ports, connection refused
	// immediately) so the per-backend jitter fractions are reproducible.
	a1, a2 := "http://127.0.0.1:2", "http://127.0.0.1:4"
	g := New(Config{
		Backends:        []string{a1, a2},
		ProbeInterval:   10 * time.Millisecond,
		ProbeBackoffMax: 80 * time.Millisecond,
	})
	t.Cleanup(g.Close)
	g.mu.Lock()
	b1, b2 := g.backends[a1], g.backends[a2]
	g.mu.Unlock()

	if b1.jfrac == b2.jfrac {
		t.Fatalf("distinct backends share jitter fraction %v", b1.jfrac)
	}

	// Fail both simultaneously until both backoffs sit at the cap, where
	// the un-jittered schedule would re-probe them in lockstep forever.
	for i := 0; i < 6; i++ {
		g.probeBackend(b1)
		g.probeBackend(b2)
	}
	b1.mu.Lock()
	n1 := b1.nextProbe
	b1.mu.Unlock()
	b2.mu.Lock()
	n2 := b2.nextProbe
	b2.mu.Unlock()

	gap := n1.Sub(n2)
	if gap < 0 {
		gap = -gap
	}
	// The two probeBackend calls are microseconds apart; a gap of
	// several milliseconds can only come from the jitter factor.
	if gap < 2*time.Millisecond {
		t.Fatalf("capped backoffs re-probe in lockstep: next probes %v apart", gap)
	}
	// Jitter must stay inside the ±25%% envelope around the cap so the
	// backoff still backs off.
	for _, until := range []time.Time{n1, n2} {
		d := time.Until(until)
		if d < 40*time.Millisecond || d > 110*time.Millisecond {
			t.Fatalf("jittered capped backoff %v outside [0.75,1.25]·cap envelope", d)
		}
	}
}

// TestEstimateConsistencyLevelsSync drives every SLA level through the
// sync-replication gateway: with no update log lag every level must
// answer the same correct value, strong/session levels echo a version,
// and the per-level outcome counters tally.
func TestEstimateConsistencyLevelsSync(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	rep, err := g.UpdateRows(ctx, "m", replaceRowReq(0, [][2]int64{{1, 5}}))
	if err != nil || rep.RowsApplied != 1 {
		t.Fatalf("update: %+v err=%v", rep, err)
	}
	want := sum - 1 + 5

	sessTok := "sess-levels"
	for _, lvl := range []string{"strong", "eventual", "monotonic", "rmw", "bounded:10s"} {
		sla, err := ParseConsistency(lvl)
		if err != nil {
			t.Fatal(err)
		}
		res, ver, err := g.estimateSLA(ctx, exactReq("m", n), sla, sessTok)
		if err != nil {
			t.Fatalf("%s estimate: %v", lvl, err)
		}
		if res.Estimate != want {
			t.Fatalf("%s estimate = %v, want %v", lvl, res.Estimate, want)
		}
		if ver == (version{}) {
			t.Fatalf("%s estimate echoed the zero version", lvl)
		}
	}
	// The served versions must have seeded the session's monotonic
	// floor, and the floor must be satisfiable (not above the head).
	if v := g.sessions.floor(sessTok, "m", ConsMonotonic); v == (version{}) {
		t.Fatal("reads did not seed the session's monotonic floor")
	}
	slaStats := g.Stats().SLA
	for _, lvl := range []string{"strong", "eventual", "monotonic", "rmw", "bounded"} {
		st, ok := slaStats[lvl]
		if !ok || st.Hits+st.Catchups+st.Misses == 0 {
			t.Fatalf("no SLA outcomes tallied for %s: %+v", lvl, slaStats)
		}
	}
}

// TestUpdateSeedsRMWFloor checks the write side of read-my-writes: a
// committed update under a session raises that session's rmw floor to
// the committed version.
func TestUpdateSeedsRMWFloor(t *testing.T) {
	n := 8
	b1 := startBackend(t)
	g := newTestGateway(t, 1, b1.addr)
	ctx := context.Background()

	wire, _ := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	_, ver, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{1, 9}}), "w-sess")
	if err != nil {
		t.Fatal(err)
	}
	if got := g.sessions.floor("w-sess", "m", ConsRMW); got != ver {
		t.Fatalf("rmw floor = %v, want committed %v", got, ver)
	}
	if g.sessions.floor("w-sess", "m", ConsMonotonic) != (version{}) {
		t.Fatal("write moved the monotonic-read floor")
	}
}

// TestHTTPConsistencyParam exercises the ?consistency= grammar and the
// session/version echo headers over real HTTP.
func TestHTTPConsistencyParam(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g, gc := startGatewayServer(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}

	reqBody, err := json.Marshal(exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	post := func(url string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A bad grammar is a 400 before any backend work.
	resp := post(gc.BaseURL+"/estimate?consistency=bogus", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus consistency: status %d, want 400", resp.StatusCode)
	}

	// A session level without a token mints one and echoes it with the
	// served version.
	resp = post(gc.BaseURL+"/estimate?consistency=monotonic", nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("monotonic estimate: status %d body %s", resp.StatusCode, body)
	}
	tok := resp.Header.Get("MP-Session")
	if tok == "" {
		t.Fatal("no MP-Session echoed for a minted session")
	}
	if v := resp.Header.Get("MP-Version"); v == "" || v == "0.0" {
		t.Fatalf("MP-Version = %q, want a served version", v)
	}
	if !strings.Contains(string(body), "estimate") {
		t.Fatalf("estimate body: %s", body)
	}

	// The minted token is honored on the next request via header.
	resp = post(gc.BaseURL+"/estimate", map[string]string{
		"MP-Consistency": "monotonic",
		"MP-Session":     tok,
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("monotonic re-read: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("MP-Session"); got != tok {
		t.Fatalf("session echo = %q, want %q", got, tok)
	}

	// The service client's static-header option pins consistency on
	// every call — the mpload wiring.
	hc := service.New(gc.BaseURL, service.WithPathPrefix(""),
		service.WithHeader("MP-Consistency", "bounded:10s"))
	res, err := hc.Estimate(ctx, exactReq("m", n))
	if err != nil || res.Estimate != sum {
		t.Fatalf("bounded estimate via client: res=%v err=%v", res, err)
	}
	if g.Stats().SLA["bounded"].Hits == 0 {
		t.Fatal("bounded read not tallied")
	}
}
