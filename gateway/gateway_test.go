package gateway

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/service"
)

// testBackend is one real mpserver engine behind a real HTTP listener
// that tests can stop and restart on the same address — the fixture
// for kill/re-add failover scenarios. A non-empty dataDir gives every
// engine incarnation a fresh disk store over the same directory, so a
// restart recovers durable state exactly as `mpserver -data-dir` does.
type testBackend struct {
	t        *testing.T
	addr     string // base URL
	hostport string
	cfg      service.Config
	dataDir  string
	mu       sync.Mutex
	engine   *service.Engine
	srv      *http.Server
	disk     *store.Disk
}

func startBackend(t *testing.T) *testBackend {
	return startBackendWith(t, service.Config{Workers: 4, Shards: 1})
}

func startBackendWith(t *testing.T, cfg service.Config) *testBackend {
	return startBackendAt(t, cfg, "")
}

// startDurableBackend starts a backend persisting to its own temp data
// directory; stop/restart cycles recover from it.
func startDurableBackend(t *testing.T) *testBackend {
	return startBackendAt(t, service.Config{Workers: 4, Shards: 1}, t.TempDir())
}

func startBackendAt(t *testing.T, cfg service.Config, dataDir string) *testBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	b := &testBackend{t: t, hostport: ln.Addr().String(), cfg: cfg, dataDir: dataDir}
	b.addr = "http://" + b.hostport
	b.serve(ln)
	t.Cleanup(b.stop)
	return b
}

// serve installs a fresh engine behind the listener — an empty
// in-memory registry, recovered from the data directory when the
// backend is durable, exactly as a restarted process would.
func (b *testBackend) serve(ln net.Listener) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cfg := b.cfg
	if b.dataDir != "" {
		d, err := store.OpenDisk(store.DiskConfig{Dir: b.dataDir, Fsync: store.FsyncAlways})
		if err != nil {
			b.t.Fatalf("open data dir: %v", err)
		}
		b.disk = d
		cfg.Store = d
	}
	b.engine = service.NewEngine(cfg)
	b.srv = &http.Server{Handler: service.NewHandler(b.engine)}
	srv := b.srv
	go func() { _ = srv.Serve(ln) }()
}

func (b *testBackend) stop() {
	b.mu.Lock()
	srv, eng, disk := b.srv, b.engine, b.disk
	b.srv, b.engine, b.disk = nil, nil, nil
	b.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
	if eng != nil {
		eng.Close()
	}
	if disk != nil {
		_ = disk.Close()
	}
}

func (b *testBackend) restart() {
	b.t.Helper()
	var ln net.Listener
	var err error
	// The just-freed port can linger in TIME_WAIT-adjacent states
	// briefly; retry the bind rather than flaking.
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", b.hostport)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		b.t.Fatalf("rebind %s: %v", b.hostport, err)
	}
	b.serve(ln)
}

// holds reports whether the backend's current engine serves the named
// matrix.
func (b *testBackend) holds(name string) bool {
	b.mu.Lock()
	eng := b.engine
	b.mu.Unlock()
	if eng == nil {
		return false
	}
	for _, mi := range eng.Matrices() {
		if mi.Name == name {
			return true
		}
	}
	return false
}

func newTestGateway(t *testing.T, r int, addrs ...string) *Gateway {
	t.Helper()
	g := New(Config{
		Backends:        addrs,
		Replication:     r,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		ProbeBackoffMax: 100 * time.Millisecond,
	})
	t.Cleanup(g.Close)
	return g
}

// identWire is the n×n identity in wire form: with it as Alice's
// matrix, A·B = B, so kind "exact" answers ‖B‖1 deterministically.
func identWire(n int) service.Matrix {
	m := service.Matrix{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, [3]int64{int64(i), int64(i), 1})
	}
	return m
}

// testMatrix is a small non-negative served matrix with a known entry
// sum (= its exact ‖AB‖1 against an identity query).
func testMatrix(n int) (service.Matrix, float64) {
	m := service.Matrix{Rows: n, Cols: n}
	var sum float64
	for i := 0; i < n; i++ {
		v := int64(i%3 + 1)
		m.Entries = append(m.Entries, [3]int64{int64(i), int64((i + 1) % n), v})
		sum += float64(v)
	}
	return m, sum
}

func exactReq(name string, n int) service.Request {
	return service.Request{Matrix: name, Kind: "exact", A: identWire(n)}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func backendStatus(g *Gateway, addr string) (BackendStatus, bool) {
	for _, st := range g.Backends() {
		if st.Addr == addr {
			return st, true
		}
	}
	return BackendStatus{}, false
}

func TestPutReplicatesAndEstimates(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if len(info.Replicas) != 2 {
		t.Fatalf("want 2 replicas, got %v", info.Replicas)
	}
	for _, addr := range info.Replicas {
		if !byAddr[addr].holds("m") {
			t.Fatalf("replica %s does not hold the matrix", addr)
		}
	}
	// The third backend must not hold a copy.
	for addr, tb := range byAddr {
		placed := false
		for _, r := range info.Replicas {
			placed = placed || r == addr
		}
		if !placed && tb.holds("m") {
			t.Fatalf("non-replica %s holds the matrix", addr)
		}
	}
	if got := g.Matrices(); len(got) != 1 || got[0].Name != "m" || len(got[0].Replicas) != 2 {
		t.Fatalf("placement listing wrong: %+v", got)
	}
	res, err := g.Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if res.Estimate != sum {
		t.Fatalf("exact estimate = %v, want %v", res.Estimate, sum)
	}
	if err := g.DeleteMatrix(ctx, "m"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	for addr, tb := range byAddr {
		if tb.holds("m") {
			t.Fatalf("%s still holds the matrix after delete", addr)
		}
	}
	if _, err := g.Estimate(ctx, exactReq("m", n)); !errors.Is(err, service.ErrMatrixNotFound) {
		t.Fatalf("estimate after delete: %v, want ErrMatrixNotFound", err)
	}
}

func TestPutAllOrNothing(t *testing.T) {
	good := startBackend(t)
	// A backend that accepts probes but rejects every upload.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			http.Error(w, `{"error":"disk full"}`, http.StatusInternalServerError)
			return
		}
		service.WriteJSON(w, http.StatusOK, service.Stats{})
	}))
	t.Cleanup(bad.Close)

	g := newTestGateway(t, 2, good.addr, bad.URL)
	_, err := g.PutMatrix(context.Background(), "m", identWire(4))
	if err == nil {
		t.Fatal("replicated put with a failing replica succeeded")
	}
	if good.holds("m") {
		t.Fatal("partial put left a copy on the healthy replica")
	}
	if len(g.Matrices()) != 0 {
		t.Fatalf("failed put entered the placement table: %v", g.Matrices())
	}
}

func TestEstimateFailoverOnKill(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	victim := byAddr[info.Replicas[0]]
	victim.stop()

	for i := 0; i < 8; i++ {
		res, err := g.Estimate(ctx, exactReq("m", n))
		if err != nil {
			t.Fatalf("estimate %d after kill: %v", i, err)
		}
		if res.Estimate != sum {
			t.Fatalf("estimate %d = %v, want %v", i, res.Estimate, sum)
		}
	}
	st := g.Stats()
	if st.Failovers == 0 {
		t.Fatalf("no failovers recorded after killing a replica: %+v", st)
	}
	waitFor(t, "victim marked unhealthy", func() bool {
		bs, ok := backendStatus(g, victim.addr)
		return ok && !bs.Healthy
	})
	if bs, _ := backendStatus(g, victim.addr); bs.LastError == "" {
		t.Fatal("unhealthy backend has no LastError")
	}
}

func TestKillRestartReadmitsAndResyncs(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2}
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if len(info.Replicas) != 2 {
		t.Fatalf("want both backends as replicas, got %v", info.Replicas)
	}
	victim := byAddr[info.Replicas[1]]
	victim.stop()
	waitFor(t, "victim demoted", func() bool {
		bs, ok := backendStatus(g, victim.addr)
		return ok && !bs.Healthy
	})
	// The surviving replica answers alone.
	if res, err := g.Estimate(ctx, exactReq("m", n)); err != nil || res.Estimate != sum {
		t.Fatalf("estimate with one replica down: res=%v err=%v", res, err)
	}
	// Restart empty on the same address: the prober must re-admit it
	// only after re-seeding the placed matrix.
	victim.restart()
	waitFor(t, "victim re-admitted", func() bool {
		bs, ok := backendStatus(g, victim.addr)
		return ok && bs.Healthy
	})
	waitFor(t, "matrix re-seeded on the restarted replica", func() bool {
		return victim.holds("m")
	})
	if st := g.Stats(); st.Repairs == 0 {
		t.Fatalf("readmission resync recorded no repairs: %+v", st)
	}
}

func TestEstimate404RepairsReplica(t *testing.T) {
	n := 8
	b1 := startBackend(t)
	g := newTestGateway(t, 1, b1.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Simulate a silent data loss: delete the copy directly on the
	// backend, behind the gateway's back.
	if err := service.NewClient(b1.addr).DeleteMatrix(ctx, "m"); err != nil {
		t.Fatalf("backdoor delete: %v", err)
	}
	res, err := g.Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatalf("estimate after replica data loss: %v", err)
	}
	if res.Estimate != sum {
		t.Fatalf("estimate = %v, want %v", res.Estimate, sum)
	}
	if st := g.Stats(); st.Repairs == 0 {
		t.Fatal("404 repair not recorded")
	}
}

func TestFailoverUnderConcurrentLoad(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	victim := byAddr[info.Replicas[0]]

	stop := make(chan struct{})
	errCh := make(chan error, 64)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := g.Estimate(ctx, exactReq("m", n))
				if err != nil {
					errCh <- err
					return
				}
				if res.Estimate != sum {
					errCh <- fmt.Errorf("estimate = %v, want %v", res.Estimate, sum)
					return
				}
			}
		}()
	}
	time.Sleep(80 * time.Millisecond)
	victim.stop() // kill a replica with estimates in flight
	time.Sleep(150 * time.Millisecond)
	victim.restart() // and bring it back while load continues
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("client-visible error during kill/re-add: %v", err)
	default:
	}
	if st := g.Stats(); st.Failovers == 0 {
		t.Fatalf("no failovers under mid-run kill: %+v", st)
	}
}

func TestDrainRebalances(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		if _, err := g.PutMatrix(ctx, names[i], wire); err != nil {
			t.Fatalf("put %s: %v", names[i], err)
		}
	}
	// Drain the backend with at least one placement.
	var victim *testBackend
	for _, pm := range g.Matrices() {
		victim = byAddr[pm.Replicas[0]]
		break
	}
	before := victim.engine.Stats().Requests
	rep, err := g.DrainBackend(ctx, victim.addr)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep.Action != "drain" || rep.Failed != 0 {
		t.Fatalf("drain report: %+v", rep)
	}
	for _, pm := range g.Matrices() {
		if len(pm.Replicas) != 2 {
			t.Fatalf("%s: want 2 replicas after drain, got %v", pm.Name, pm.Replicas)
		}
		for _, r := range pm.Replicas {
			if r == victim.addr {
				t.Fatalf("%s still placed on drained backend", pm.Name)
			}
			if !byAddr[r].holds(pm.Name) {
				t.Fatalf("%s: replica %s missing its copy after rebalance", pm.Name, r)
			}
		}
	}
	for _, name := range names {
		if victim.holds(name) {
			t.Fatalf("drained backend still holds %s", name)
		}
		res, err := g.Estimate(ctx, exactReq(name, n))
		if err != nil || res.Estimate != sum {
			t.Fatalf("estimate %s after drain: res=%v err=%v", name, res, err)
		}
	}
	if after := victim.engine.Stats().Requests; after != before {
		t.Fatalf("drained backend served %d new estimates", after-before)
	}
	if st := g.Stats(); st.Rebalanced == 0 {
		t.Fatal("drain rebalanced nothing")
	}
}

func TestAddBackendRebalances(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	for i := 0; i < 8; i++ {
		if _, err := g.PutMatrix(ctx, fmt.Sprintf("m%d", i), wire); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	b3 := startBackend(t)
	rep, err := g.AddBackend(ctx, b3.addr)
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if rep.Action != "add" || rep.Backend != b3.addr {
		t.Fatalf("add report: %+v", rep)
	}
	// Every matrix must now sit exactly on its rendezvous top-2 over
	// the grown pool, with the data actually there.
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	moved := 0
	for _, pm := range g.Matrices() {
		want := placeOn(rankBackends([]string{b1.addr, b2.addr, b3.addr}, pm.Name), 2)
		if !equalSets(pm.Replicas, want) {
			t.Fatalf("%s placed on %v, want %v", pm.Name, pm.Replicas, want)
		}
		onNew := false
		for _, r := range pm.Replicas {
			if !byAddr[r].holds(pm.Name) {
				t.Fatalf("%s: replica %s missing copy", pm.Name, r)
			}
			onNew = onNew || r == b3.addr
		}
		if onNew {
			moved++
		}
		res, err := g.Estimate(ctx, exactReq(pm.Name, n))
		if err != nil || res.Estimate != sum {
			t.Fatalf("estimate %s after add: res=%v err=%v", pm.Name, res, err)
		}
	}
	if moved == 0 {
		t.Fatal("adding a backend moved no matrices (8 names should not all miss its top-2)")
	}
	if moved != rep.Moved {
		t.Fatalf("report says %d moved, placement shows %d", rep.Moved, moved)
	}
}

func TestRemoveBackend(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	for i := 0; i < 6; i++ {
		if _, err := g.PutMatrix(ctx, fmt.Sprintf("m%d", i), wire); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if _, err := g.RemoveBackend(ctx, b3.addr); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, ok := backendStatus(g, b3.addr); ok {
		t.Fatal("removed backend still listed")
	}
	for _, pm := range g.Matrices() {
		for _, r := range pm.Replicas {
			if r == b3.addr {
				t.Fatalf("%s still placed on removed backend", pm.Name)
			}
		}
		res, err := g.Estimate(ctx, exactReq(pm.Name, n))
		if err != nil || res.Estimate != sum {
			t.Fatalf("estimate %s after remove: res=%v err=%v", pm.Name, res, err)
		}
	}
	if _, err := g.DrainBackend(ctx, "http://nope:1"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("drain of unknown backend: %v, want ErrUnknownBackend", err)
	}
}

func TestResyncDeletesStragglers(t *testing.T) {
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	if _, err := g.PutMatrix(ctx, "placed", identWire(4)); err != nil {
		t.Fatalf("put: %v", err)
	}
	// A matrix the gateway knows nothing about appears on a backend
	// (say, left over from before the backend was pooled).
	if _, err := service.NewClient(b1.addr).UploadMatrix(ctx, "straggler", identWire(4)); err != nil {
		t.Fatalf("backdoor upload: %v", err)
	}
	g.mu.Lock()
	b := g.backends[b1.addr]
	g.mu.Unlock()
	g.resyncBackend(b)
	if b1.holds("straggler") {
		t.Fatal("resync kept a matrix the placement table does not know")
	}
	if !b1.holds("placed") {
		t.Fatal("resync deleted a placed matrix")
	}
}

func TestProbeBackoff(t *testing.T) {
	// A port with nothing listening: every probe fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	ln.Close()
	g := New(Config{
		Backends:        []string{addr},
		ProbeInterval:   10 * time.Millisecond,
		ProbeBackoffMax: 80 * time.Millisecond,
	})
	t.Cleanup(g.Close)
	g.mu.Lock()
	b := g.backends[addr]
	g.mu.Unlock()

	var gaps []time.Duration
	for i := 0; i < 6; i++ {
		g.probeBackend(b)
		b.mu.Lock()
		if b.healthy {
			t.Fatal("dead backend probed healthy")
		}
		if b.consecFails != i+1 {
			t.Fatalf("consecFails = %d after %d failures", b.consecFails, i+1)
		}
		gaps = append(gaps, time.Until(b.nextProbe))
		b.mu.Unlock()
	}
	// The backoff must grow and then cap: 20ms, 40ms, 80ms, 80ms, …
	if !(gaps[0] < gaps[1] && gaps[1] < gaps[2]) {
		t.Fatalf("backoff not growing: %v", gaps)
	}
	if gaps[5] > 100*time.Millisecond {
		t.Fatalf("backoff exceeded cap: %v", gaps)
	}
}
