package gateway

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/service"
)

// replaceRowReq builds a replace-mode single-row update request.
func replaceRowReq(row int, entries [][2]int64) service.UpdateRequest {
	return service.UpdateRequest{Updates: []service.RowUpdate{{Row: row, Entries: entries}}}
}

// wireSum is Σ entries of a wire matrix (= exact ‖AB‖1 against an
// identity Alice for non-negative matrices).
func wireSum(m service.Matrix) float64 {
	var s float64
	for _, ent := range m.Entries {
		s += float64(ent[2])
	}
	return s
}

func TestPatchWire(t *testing.T) {
	w := service.Matrix{Rows: 4, Cols: 4, Entries: [][3]int64{{0, 0, 2}, {1, 1, 3}, {1, 3, 4}, {2, 2, 1}}}

	// Replace row 1 entirely.
	got, rows, err := patchWire(w, []service.RowUpdate{{Row: 1, Entries: [][2]int64{{0, 9}}}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, []int{1}) {
		t.Fatalf("rows = %v", rows)
	}
	want := [][3]int64{{0, 0, 2}, {2, 2, 1}, {1, 0, 9}}
	if !reflect.DeepEqual(got.Entries, want) {
		t.Fatalf("replace: got %v want %v", got.Entries, want)
	}

	// Delta: merge into an existing cell (cancelling it) and create a
	// fresh one.
	got, _, err = patchWire(w, []service.RowUpdate{{Row: 1, Entries: [][2]int64{{1, -3}, {2, 5}}}}, true)
	if err != nil {
		t.Fatal(err)
	}
	want = [][3]int64{{0, 0, 2}, {1, 3, 4}, {2, 2, 1}, {1, 2, 5}}
	if !reflect.DeepEqual(got.Entries, want) {
		t.Fatalf("delta: got %v want %v", got.Entries, want)
	}

	// Validation.
	if _, _, err := patchWire(w, []service.RowUpdate{{Row: 4}}, false); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("row out of range: %v", err)
	}
	if _, _, err := patchWire(w, []service.RowUpdate{{Row: 0, Entries: [][2]int64{{4, 1}}}}, false); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("col out of range: %v", err)
	}
	if _, _, err := patchWire(w, []service.RowUpdate{{Row: 0, Entries: [][2]int64{{1, 1}, {1, 2}}}}, false); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("dup col: %v", err)
	}
}

// TestUpdateRowsReplicates pins the happy path: the patch lands on
// every replica, the retained wire is patched, and estimates answer
// the post-update value from any replica.
func TestUpdateRowsReplicates(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	// Replace row 0 (old value: entry (0,1) = 1) with a value-7 entry.
	rep, err := g.UpdateRows(ctx, "m", replaceRowReq(0, [][2]int64{{2, 7}}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsApplied != 1 {
		t.Fatalf("reply %+v", rep)
	}
	wantSum := sum - 1 + 7

	// The gateway's estimate and the retained wire agree.
	res, err := g.Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != wantSum {
		t.Fatalf("estimate after update = %v, want %v", res.Estimate, wantSum)
	}
	g.mu.Lock()
	retained := g.matrices["m"].wire
	g.mu.Unlock()
	if got := wireSum(retained); got != wantSum {
		t.Fatalf("retained wire sum = %v, want %v", got, wantSum)
	}

	// Every replica answers the updated value when queried directly.
	for _, addr := range info.Replicas {
		res, err := service.NewClient(addr).Estimate(ctx, exactReq("m", n))
		if err != nil {
			t.Fatalf("replica %s: %v", addr, err)
		}
		if res.Estimate != wantSum {
			t.Fatalf("replica %s answers %v, want %v", addr, res.Estimate, wantSum)
		}
	}
	if st := g.Stats(); st.Updates != 1 || st.UpdateReverts != 0 {
		t.Fatalf("stats %+v", st)
	}

	// Validation errors pass through without touching replicas.
	if _, err := g.UpdateRows(ctx, "m", replaceRowReq(99, nil)); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("bad row: %v", err)
	}
	if _, err := g.UpdateRows(ctx, "ghost", replaceRowReq(0, nil)); !errors.Is(err, service.ErrMatrixNotFound) {
		t.Fatalf("unknown matrix: %v", err)
	}
	if _, err := g.UpdateRows(ctx, "m", service.UpdateRequest{}); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("empty update: %v", err)
	}
}

// TestUpdateThenRepairServesUpdatedMatrix is the regression test for
// the retained-wire-copy bug: a repair that runs *after* an update
// must re-seed the patched matrix, not the original upload. It pins
// both repair paths — the estimate-path 404 repair and the probe-time
// resync after a kill/restart.
func TestUpdateThenRepairServesUpdatedMatrix(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2}
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.UpdateRows(ctx, "m", replaceRowReq(0, [][2]int64{{2, 7}})); err != nil {
		t.Fatal(err)
	}
	wantSum := sum - 1 + 7

	// Estimate-path repair: one replica silently loses the matrix (as
	// if its registry LRU-evicted it); the 404 triggers an in-line
	// re-seed, which must ship the patched copy.
	victim := byAddr[info.Replicas[0]]
	if err := service.NewClient(victim.addr).DeleteMatrix(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	repairsBefore := g.Stats().Repairs
	for i := 0; i < 50 && g.Stats().Repairs == repairsBefore; i++ {
		res, err := g.Estimate(ctx, exactReq("m", n))
		if err != nil {
			t.Fatalf("estimate during repair window: %v", err)
		}
		if res.Estimate != wantSum {
			t.Fatalf("estimate = %v, want %v (stale pre-update copy served)", res.Estimate, wantSum)
		}
	}
	waitFor(t, "estimate-path repair", func() bool { return victim.holds("m") })
	res, err := service.NewClient(victim.addr).Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != wantSum {
		t.Fatalf("repaired replica answers %v, want %v — repair used the pre-update wire copy", res.Estimate, wantSum)
	}

	// Probe-resync repair: kill and restart the other replica (it comes
	// back empty); the resync must also re-seed the patched copy.
	other := byAddr[info.Replicas[1]]
	other.stop()
	time.Sleep(50 * time.Millisecond)
	other.restart()
	waitFor(t, "probe resync", func() bool { return other.holds("m") })
	res, err = service.NewClient(other.addr).Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != wantSum {
		t.Fatalf("resynced replica answers %v, want %v — resync used the pre-update wire copy", res.Estimate, wantSum)
	}
}

// rejectingBackend is a fake backend that accepts uploads and probes
// but answers every row update with a hard 400 — the trigger for the
// all-or-nothing revert.
func rejectingBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPatch:
			service.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": "synthetic rejection"})
		case r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/matrix/"):
			service.WriteJSON(w, http.StatusOK, service.UploadReply{})
		case r.Method == http.MethodDelete:
			service.WriteJSON(w, http.StatusOK, map[string]string{})
		default:
			service.WriteJSON(w, http.StatusOK, service.Stats{})
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestUpdateRowsAllOrNothingRevert pins the revert: when one replica
// answers a hard rejection, replicas that applied the patch are
// re-seeded with the pre-update wire and the retained copy stays
// unpatched.
func TestUpdateRowsAllOrNothingRevert(t *testing.T) {
	n := 8
	good := startBackend(t)
	bad := rejectingBackend(t)
	g := newTestGateway(t, 2, good.addr, bad.URL)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	_, err := g.UpdateRows(ctx, "m", replaceRowReq(0, [][2]int64{{2, 7}}))
	if err == nil {
		t.Fatal("update succeeded despite a rejecting replica")
	}
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want the replica's 400 surfaced, got %v", err)
	}
	if st := g.Stats(); st.UpdateReverts != 1 {
		t.Fatalf("UpdateReverts = %d, want 1", st.UpdateReverts)
	}

	// The good replica was reverted to the pre-update matrix and the
	// retained wire never advanced.
	res, err := service.NewClient(good.addr).Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != sum {
		t.Fatalf("replica answers %v after revert, want pre-update %v", res.Estimate, sum)
	}
	g.mu.Lock()
	retained := g.matrices["m"].wire
	g.mu.Unlock()
	if got := wireSum(retained); got != sum {
		t.Fatalf("retained wire sum = %v, want pre-update %v", got, sum)
	}
}

// TestUpdateRowsDropsUnreachableReplica pins the availability half:
// with one replica down, the update commits on the reachable one, the
// dead replica is dropped from the placement, and — once it returns —
// the post-repair resync + rebalance restore it with the *patched*
// matrix.
func TestUpdateRowsDropsUnreachableReplica(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2}
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	victim := byAddr[info.Replicas[0]]
	victim.stop()

	rep, err := g.UpdateRows(ctx, "m", replaceRowReq(0, [][2]int64{{2, 7}}))
	if err != nil {
		t.Fatalf("update with one dead replica: %v", err)
	}
	if rep.RowsApplied != 1 {
		t.Fatalf("reply %+v", rep)
	}
	wantSum := sum - 1 + 7
	g.mu.Lock()
	pm := g.matrices["m"]
	g.mu.Unlock()
	if len(pm.replicas) != 1 {
		t.Fatalf("dead replica not dropped: %v", pm.replicas)
	}
	if got := wireSum(pm.wire); got != wantSum {
		t.Fatalf("retained wire sum = %v, want %v", got, wantSum)
	}
	if res, err := g.Estimate(ctx, exactReq("m", n)); err != nil || res.Estimate != wantSum {
		t.Fatalf("estimate = %v/%v, want %v", res, err, wantSum)
	}

	// The dead backend returns (empty): resync + the post-repair
	// rebalance must restore the replica with the patched matrix.
	victim.restart()
	waitFor(t, "replica restored", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.matrices["m"].replicas) == 2
	})
	waitFor(t, "restored copy", func() bool { return victim.holds("m") })
	res, err := service.NewClient(victim.addr).Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != wantSum {
		t.Fatalf("restored replica answers %v, want patched %v", res.Estimate, wantSum)
	}
	if st := g.Stats(); st.LostReplicas == 0 {
		t.Fatalf("dropped replica not counted: %+v", st)
	}
}

// TestUpdateRows404RepairsLeg pins the inline update-path repair: a
// replica that silently lost the matrix answers 404 to the PATCH and
// is re-seeded with the *patched* wire, and the update still succeeds
// on its full replica set.
func TestUpdateRows404RepairsLeg(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2}
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	victim := byAddr[info.Replicas[0]]
	if err := service.NewClient(victim.addr).DeleteMatrix(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	repairsBefore := g.Stats().Repairs
	rep, err := g.UpdateRows(ctx, "m", replaceRowReq(0, [][2]int64{{2, 7}}))
	if err != nil {
		t.Fatalf("update with a 404 leg: %v", err)
	}
	if rep.RowsApplied != 1 {
		t.Fatalf("reply %+v", rep)
	}
	// The reply must come from the leg that applied the patch (sub
	// advanced), not the repaired leg's synthesized full-upload reply.
	if rep.Sub != 1 {
		t.Fatalf("reply sub = %d, want 1 (non-repaired leg's reply)", rep.Sub)
	}
	if g.Stats().Repairs != repairsBefore+1 {
		t.Fatal("404 leg repair not counted")
	}
	wantSum := sum - 1 + 7
	for _, addr := range []string{b1.addr, b2.addr} {
		res, err := service.NewClient(addr).Estimate(ctx, exactReq("m", n))
		if err != nil {
			t.Fatalf("replica %s: %v", addr, err)
		}
		if res.Estimate != wantSum {
			t.Fatalf("replica %s answers %v, want %v", addr, res.Estimate, wantSum)
		}
	}
}

// TestUpdateRowsEdgeErrors covers the closed-gateway and
// replica-less-placement paths.
func TestUpdateRowsEdgeErrors(t *testing.T) {
	b1 := startBackend(t)
	g := newTestGateway(t, 1, b1.addr)
	ctx := context.Background()
	wire, _ := testMatrix(4)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	// A placement whose replicas were all pruned (e.g. by backend-side
	// evictions) has nothing to update.
	g.mu.Lock()
	pm := g.matrices["m"]
	g.matrices["m"] = &placedMatrix{info: pm.info, wire: pm.wire, replicas: nil}
	g.mu.Unlock()
	if _, err := g.UpdateRows(ctx, "m", replaceRowReq(0, nil)); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("replica-less update: got %v, want ErrNoBackends", err)
	}
	g.Close()
	if _, err := g.UpdateRows(ctx, "m", replaceRowReq(0, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed gateway: got %v, want ErrClosed", err)
	}
}

// TestUpdateRowsHTTPAndClient drives the gateway PATCH route through
// the service client (a gateway is a drop-in service endpoint).
func TestUpdateRowsHTTPAndClient(t *testing.T) {
	n := 8
	b1 := startBackend(t)
	g := newTestGateway(t, 1, b1.addr)
	srv := httptest.NewServer(NewHandler(g))
	t.Cleanup(srv.Close)
	ctx := context.Background()

	client := service.NewClient(srv.URL)
	wire, sum := testMatrix(n)
	if _, err := client.UploadMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	rep, err := client.ReplaceRow(ctx, "m", 0, [][2]int64{{2, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsApplied != 1 {
		t.Fatalf("reply %+v", rep)
	}
	res, err := client.Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	if want := sum - 1 + 7; res.Estimate != want {
		t.Fatalf("estimate = %v, want %v", res.Estimate, want)
	}
	var apiErr *service.APIError
	if _, err := client.ReplaceRow(ctx, "ghost", 0, nil); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown matrix over HTTP: %v", err)
	}
}
