package gateway

import (
	"hash/fnv"
	"sort"
)

// placementScore is the rendezvous (highest-random-weight) score of a
// (backend, matrix) pair: a 64-bit hash of the backend id and the
// matrix name. Each matrix independently ranks every backend by score,
// and its replicas are the top R of that ranking — so adding or
// removing one backend only moves the matrices whose top R that
// backend enters or leaves, the minimal-disruption property that makes
// rebalancing cheap.
func placementScore(backendID, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(backendID))
	h.Write([]byte{0}) // separate the parts so "ab"+"c" ≠ "a"+"bc"
	h.Write([]byte(name))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone avalanches poorly on
// short tails: backend URLs differing only in the port digit produce
// scores whose per-id gaps dwarf the per-name variation, so one
// backend would lose the ranking for every matrix. The finalizer
// cascades every input bit across the word, restoring the independent
// per-(backend, name) coin rendezvous hashing needs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rankBackends orders backend ids for a matrix name by descending
// rendezvous score (ties broken by id, so the ranking is a pure
// function of the id set and the name — insertion order never
// matters). The placement of a matrix is the first R entries.
func rankBackends(ids []string, name string) []string {
	ranked := make([]string, len(ids))
	copy(ranked, ids)
	score := make(map[string]uint64, len(ids))
	for _, id := range ids {
		score[id] = placementScore(id, name)
	}
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := score[ranked[i]], score[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// placeOn returns the top-r prefix of the ranked backends (all of them
// when fewer than r are available).
func placeOn(ranked []string, r int) []string {
	if len(ranked) > r {
		ranked = ranked[:r]
	}
	out := make([]string, len(ranked))
	copy(out, ranked)
	return out
}
