package gateway

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/service"
)

// fanoutUpload is one in-progress replicated chunked upload: the
// gateway token the client holds, one backend-side upload leg per
// target replica, and the accumulated entries that become the
// placement table's retained wire form at commit.
//
// legMu serializes the upload's own lifecycle steps (two appends to
// the same token must not interleave across the legs); the gateway's
// map lock is never held across the network calls.
type fanoutUpload struct {
	token string
	name  string
	rows  int
	cols  int

	legMu   sync.Mutex
	legs    []uploadLeg
	entries [][3]int64
	chunks  int
	// touched is the last-activity time as UnixNano — atomic, because
	// appends write it under legMu while the GC reads it under g.mu,
	// and the two paths share no other lock.
	touched atomic.Int64
}

// uploadLeg is one backend's half of a fan-out upload.
type uploadLeg struct {
	b     *backend
	token string
}

// gcUploadsLocked drops fan-out uploads idle past the TTL, aborting
// their backend legs best-effort. Callers hold g.mu; the aborts run
// detached so the lock is not held across network calls.
func (g *Gateway) gcUploadsLocked(now time.Time) {
	for tok, up := range g.uploads {
		if now.Sub(time.Unix(0, up.touched.Load())) > g.cfg.UploadTTL {
			delete(g.uploads, tok)
			go up.abortLegs()
		}
	}
}

// abortLegs discards the upload's staged state on every backend,
// best-effort (the backends' own TTL GC is the backstop).
func (up *fanoutUpload) abortLegs() {
	up.legMu.Lock() //mp:lockio-ok audited: per-upload leg serialization; abortLegs runs detached (never under g.mu) and the legs must not interleave with a racing append/commit
	defer up.legMu.Unlock()
	for _, leg := range up.legs {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = leg.b.client.AbortUpload(ctx, up.name, leg.token)
		cancel()
	}
}

// lookupUpload resolves a gateway upload token addressed at the named
// matrix, running the lazy TTL GC on the way.
func (g *Gateway) lookupUpload(name, token string) (*fanoutUpload, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gcUploadsLocked(time.Now())
	up, ok := g.uploads[token]
	if !ok || up.name != name {
		return nil, fmt.Errorf("%w: %q for matrix %q", service.ErrUploadNotFound, token, name)
	}
	return up, nil
}

// BeginUpload starts a replicated chunked upload: one backend-side
// upload is begun on every target replica, and the returned UploadInfo
// carries the gateway's own token, which every subsequent step must
// present. Any leg failing to begin aborts the others (all-or-nothing
// from the first step).
func (g *Gateway) BeginUpload(ctx context.Context, name string, rows, cols int) (service.UploadInfo, error) {
	if g.isClosed() {
		return service.UploadInfo{}, ErrClosed
	}
	if name == "" {
		return service.UploadInfo{}, fmt.Errorf("%w: empty matrix name", service.ErrBadRequest)
	}
	targets := g.placementTargets(name)
	if len(targets) == 0 {
		return service.UploadInfo{}, ErrNoBackends
	}
	infos := make([]service.UploadInfo, len(targets))
	errs, first := fanout(targets, func(i int, b *backend) error {
		var err error
		infos[i], err = b.client.BeginUpload(ctx, name, rows, cols)
		return err
	})
	if first != nil {
		for i, err := range errs {
			if err == nil {
				abortCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_ = targets[i].client.AbortUpload(abortCtx, name, infos[i].Upload)
				cancel()
			}
		}
		return service.UploadInfo{}, fmt.Errorf("gateway: replicated begin of %q failed: %w", name, first)
	}
	now := time.Now()
	up := &fanoutUpload{
		token: fmt.Sprintf("gw-%d-%d", g.upSeq.Add(1), now.UnixNano()),
		name:  name,
		rows:  rows,
		cols:  cols,
	}
	up.touched.Store(now.UnixNano())
	for i, b := range targets {
		up.legs = append(up.legs, uploadLeg{b: b, token: infos[i].Upload})
	}
	g.mu.Lock()
	g.gcUploadsLocked(now)
	g.uploads[up.token] = up
	g.mu.Unlock()
	info := infos[0]
	info.Upload = up.token
	info.Expires = now.Add(g.cfg.UploadTTL)
	return info, nil
}

// AppendChunk ships one row-range chunk to every leg of a replicated
// upload. Unlike the single-backend path — where a rejected chunk can
// be corrected and resent — any leg failure here aborts the whole
// upload: a chunk accepted by some replicas and rejected by others
// would leave the legs divergent, and a resend would then be a
// duplicate on the replicas that took it the first time.
func (g *Gateway) AppendChunk(ctx context.Context, name, token string, rowStart, rowEnd int, entries [][3]int64) (service.UploadInfo, error) {
	up, err := g.lookupUpload(name, token)
	if err != nil {
		return service.UploadInfo{}, err
	}
	up.legMu.Lock() //mp:lockio-ok audited: chunks must ship to every leg in one serialized step or replicas diverge (see method doc)
	defer up.legMu.Unlock()
	legBackends := make([]*backend, len(up.legs))
	for i, leg := range up.legs {
		legBackends[i] = leg.b
	}
	infos := make([]service.UploadInfo, len(up.legs))
	_, first := fanout(legBackends, func(i int, b *backend) error {
		var err error
		infos[i], err = b.client.AppendChunk(ctx, name, up.legs[i].token, rowStart, rowEnd, entries)
		return err
	})
	if first != nil {
		g.dropUpload(up)
		go up.abortLegs()
		return service.UploadInfo{}, fmt.Errorf("gateway: replicated append to %q failed (upload aborted): %w", name, first)
	}
	now := time.Now()
	up.entries = append(up.entries, entries...)
	up.chunks++
	up.touched.Store(now.UnixNano())
	info := infos[0]
	info.Upload = up.token
	info.Expires = now.Add(g.cfg.UploadTTL)
	return info, nil
}

// dropUpload removes the upload from the staging table.
func (g *Gateway) dropUpload(up *fanoutUpload) {
	g.mu.Lock()
	delete(g.uploads, up.token)
	g.mu.Unlock()
}

// CommitUpload commits every leg of a replicated upload,
// all-or-nothing: if any replica fails to commit, the copies that did
// install are deleted and the still-staged legs aborted, so the
// matrix is either queryable on its full replica set or absent
// everywhere. On success the placement table records the matrix with
// the entries accumulated across the appends as its retained wire
// form. The gateway token is consumed either way.
func (g *Gateway) CommitUpload(ctx context.Context, name, token string) (PlacementInfo, error) {
	if g.isClosed() {
		return PlacementInfo{}, ErrClosed
	}
	up, err := g.lookupUpload(name, token)
	if err != nil {
		return PlacementInfo{}, err
	}
	// Shared with other placements, exclusive against admin topology
	// changes while the commit installs (see topoMu). The legs were
	// targeted at begin time, so backends removed since then are
	// reconciled below.
	g.topoMu.RLock() //mp:lockio-ok audited: shared topology pin held across the commit legs so admin changes cannot race the install (see comment above)
	defer g.topoMu.RUnlock()
	up.legMu.Lock() //mp:lockio-ok audited: the all-or-nothing commit must not interleave with a racing append/abort on the same legs
	defer up.legMu.Unlock()
	g.dropUpload(up)
	legBackends := make([]*backend, len(up.legs))
	for i, leg := range up.legs {
		legBackends[i] = leg.b
	}
	infos := make([]service.MatrixInfo, len(up.legs))
	errs, first := fanout(legBackends, func(i int, b *backend) error {
		var err error
		infos[i], err = b.client.CommitUpload(ctx, name, up.legs[i].token)
		return err
	})
	if first != nil {
		for i, err := range errs {
			cleanCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err == nil {
				// This leg committed: tear the installed copy down.
				_ = legBackends[i].client.DeleteMatrix(cleanCtx, name)
			} else {
				// This leg may still be staged: discard it.
				_ = legBackends[i].client.AbortUpload(cleanCtx, name, up.legs[i].token)
			}
			cancel()
		}
		return PlacementInfo{}, fmt.Errorf("gateway: replicated commit of %q failed: %w", name, first)
	}
	// A backend removed from the pool between begin and commit must not
	// enter the placement: its copy is torn down and only still-pooled
	// replicas are recorded.
	g.mu.Lock()
	ids := make([]string, 0, len(legBackends))
	var gone []*backend
	for _, b := range legBackends {
		if _, pooled := g.backends[b.id]; pooled {
			ids = append(ids, b.id)
		} else {
			gone = append(gone, b)
		}
	}
	g.mu.Unlock()
	for _, b := range gone {
		delCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = b.client.DeleteMatrix(delCtx, name)
		cancel()
	}
	if len(ids) == 0 {
		return PlacementInfo{}, fmt.Errorf("%w: every upload leg's backend left the pool before commit", ErrNoBackends)
	}
	wire := service.Matrix{Rows: up.rows, Cols: up.cols, Entries: up.entries}
	ver := version{epoch: g.epochSeq.Add(1)}
	pm := &placedMatrix{
		info:      infos[0],
		wire:      wire,
		wireBytes: wireSize(wire),
		replicas:  ids,
		ver:       ver,
	}
	g.mu.Lock()
	g.matrices[name] = pm
	g.mu.Unlock()
	g.resetUpdState(name, ver, ids)
	g.placements.Add(1)
	g.maybeSpill()
	return PlacementInfo{MatrixInfo: pm.info, Replicas: ids}, nil
}

// AbortUpload discards a replicated upload: every leg is aborted and
// the gateway token consumed.
func (g *Gateway) AbortUpload(ctx context.Context, name, token string) error {
	up, err := g.lookupUpload(name, token)
	if err != nil {
		return err
	}
	g.dropUpload(up)
	up.legMu.Lock() //mp:lockio-ok audited: per-upload leg serialization, same contract as abortLegs
	defer up.legMu.Unlock()
	for _, leg := range up.legs {
		_ = leg.b.client.AbortUpload(ctx, up.name, leg.token)
	}
	return nil
}
