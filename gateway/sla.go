package gateway

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/service"
)

// Consistency SLAs (the Pileus model): every estimate carries a
// consistency level, and routing picks the highest-utility replica
// among those whose applied version satisfies it. The version domain is
// the gateway's per-matrix (epoch, seq) pair — epoch advances on every
// wholesale placement install (a put, a chunked commit, a replacement),
// seq per committed row update within the epoch — mirroring the
// (generation, sub-version) keys the backends' WAL already assigns, so
// the two tiers agree on what "the same state" means.
//
//	eventual       any routable replica
//	monotonic      replicas at or past the session's last read
//	rmw            replicas that applied the session's own writes
//	bounded:<dur>  replicas missing no update committed ≥ dur ago
//	strong         replicas at the update-log head (the write quorum)
//
// Sessions are opaque client tokens (MP-Session); the gateway mints
// one when a session-dependent level arrives without one, and clients
// may equally bring their own.

// version is one point in a matrix's update history: the placement
// epoch and the update sequence number within it. The zero version
// precedes everything.
type version struct {
	epoch uint64
	seq   uint64
}

// Less orders versions: epoch first, then seq.
func (v version) Less(o version) bool {
	if v.epoch != o.epoch {
		return v.epoch < o.epoch
	}
	return v.seq < o.seq
}

// AtLeast reports v ≥ o.
func (v version) AtLeast(o version) bool { return !v.Less(o) }

// String renders "epoch.seq" — the MP-Version wire form.
func (v version) String() string { return fmt.Sprintf("%d.%d", v.epoch, v.seq) }

// Consistency is one SLA level.
type Consistency int

const (
	// ConsStrong requires the update-log head — the strongest (and
	// default) level; in sync replication mode every replica satisfies
	// it by construction.
	ConsStrong Consistency = iota
	// ConsEventual accepts any routable replica.
	ConsEventual
	// ConsMonotonic requires the session's reads to never move
	// backwards.
	ConsMonotonic
	// ConsRMW requires the session's own writes to be visible.
	ConsRMW
	// ConsBounded requires every update committed at least Bound ago.
	ConsBounded
)

// String returns the level's wire token.
func (c Consistency) String() string {
	switch c {
	case ConsEventual:
		return "eventual"
	case ConsMonotonic:
		return "monotonic"
	case ConsRMW:
		return "rmw"
	case ConsBounded:
		return "bounded"
	default:
		return "strong"
	}
}

// SLA is one parsed consistency requirement.
type SLA struct {
	Level Consistency
	// Bound is the staleness bound for ConsBounded (ignored otherwise).
	Bound time.Duration
}

// ParseConsistency parses the ?consistency= grammar:
// "eventual" | "monotonic" | "rmw" | "bounded:<dur>" | "strong".
// The empty string selects strong — the pre-SLA behavior.
func ParseConsistency(s string) (SLA, error) {
	switch s {
	case "", "strong":
		return SLA{Level: ConsStrong}, nil
	case "eventual":
		return SLA{Level: ConsEventual}, nil
	case "monotonic":
		return SLA{Level: ConsMonotonic}, nil
	case "rmw":
		return SLA{Level: ConsRMW}, nil
	}
	if rest, ok := strings.CutPrefix(s, "bounded:"); ok {
		d, err := time.ParseDuration(rest)
		if err != nil || d < 0 {
			return SLA{}, fmt.Errorf("%w: bad staleness bound %q (want bounded:<duration>)", service.ErrBadRequest, rest)
		}
		return SLA{Level: ConsBounded, Bound: d}, nil
	}
	return SLA{}, fmt.Errorf("%w: unknown consistency %q (want eventual|monotonic|rmw|bounded:<dur>|strong)", service.ErrBadRequest, s)
}

// session is one client session's consistency state: per matrix, the
// highest version it has read and the highest it has written.
type session struct {
	lastRead  map[string]version
	lastWrite map[string]version
	touched   time.Time
}

// sessionStore tracks sessions by token with TTL garbage collection.
// Tokens are opaque: clients may mint their own, and the gateway mints
// one ("gws-<n>") when a session-dependent level arrives without one.
type sessionStore struct {
	mu   sync.Mutex
	m    map[string]*session
	ttl  time.Duration
	seq  uint64
	last time.Time // last GC sweep
}

func newSessionStore(ttl time.Duration) *sessionStore {
	return &sessionStore{m: make(map[string]*session), ttl: ttl}
}

// get returns the session for token, creating it if absent; an empty
// token mints a fresh one. The lazy TTL sweep runs at most once per
// ttl/4 so hot paths never pay a full-map scan per request.
func (ss *sessionStore) get(token string) (string, *session) {
	now := time.Now()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if now.Sub(ss.last) > ss.ttl/4 {
		ss.last = now
		for tok, s := range ss.m {
			if now.Sub(s.touched) > ss.ttl {
				delete(ss.m, tok)
			}
		}
	}
	if token == "" {
		ss.seq++
		token = fmt.Sprintf("gws-%d-%d", ss.seq, now.UnixNano())
	}
	s, ok := ss.m[token]
	if !ok {
		s = &session{lastRead: make(map[string]version), lastWrite: make(map[string]version)}
		ss.m[token] = s
	}
	s.touched = now
	return token, s
}

// len reports the live session count (for the mpgw_sessions gauge).
func (ss *sessionStore) len() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.m)
}

// noteRead folds a served version into the session's monotonic-read
// floor for the matrix, creating the session if the client minted its
// own token.
func (ss *sessionStore) noteRead(token, name string, v version) {
	if token == "" {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.m[token]
	if !ok {
		s = &session{lastRead: make(map[string]version), lastWrite: make(map[string]version)}
		ss.m[token] = s
	}
	if s.lastRead[name].Less(v) {
		s.lastRead[name] = v
	}
	s.touched = time.Now()
}

// noteWrite folds a committed write version into the session's
// read-my-writes floor for the matrix.
func (ss *sessionStore) noteWrite(token, name string, v version) {
	if token == "" {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.m[token]
	if !ok {
		s = &session{lastRead: make(map[string]version), lastWrite: make(map[string]version)}
		ss.m[token] = s
	}
	if s.lastWrite[name].Less(v) {
		s.lastWrite[name] = v
	}
	s.touched = time.Now()
}

// floor reads the session's requirement for one matrix under one level
// (the zero version when the session or matrix has no history).
func (ss *sessionStore) floor(token, name string, level Consistency) version {
	if token == "" {
		return version{}
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.m[token]
	if !ok {
		return version{}
	}
	switch level {
	case ConsMonotonic:
		return s.lastRead[name]
	case ConsRMW:
		return s.lastWrite[name]
	}
	return version{}
}

// slaOutcome classifies how one SLA-routed read was satisfied.
type slaOutcome int

const (
	slaHit     slaOutcome = iota // an eligible replica served directly
	slaCatchup                   // a replica was caught up in line first
	slaMiss                      // degraded to the freshest available replica
)

// slaCounters is the per-level × per-outcome tally behind the
// mpgw_sla_requests_total family and the /stats SLA table. Guarded by
// its own mutex — the counters are off the per-backend hot path.
type slaCounters struct {
	mu sync.Mutex
	n  [5][3]int64 // [Consistency][slaOutcome]
}

func (c *slaCounters) note(level Consistency, out slaOutcome) {
	c.mu.Lock()
	c.n[level][out]++
	c.mu.Unlock()
}

// SLAStats is the /stats view of one level's read outcomes.
type SLAStats struct {
	// Hits counts reads served directly by an eligible replica.
	Hits int64 `json:"hits"`
	// Catchups counts reads that first replayed pending updates to a
	// replica in line to make it eligible.
	Catchups int64 `json:"catchups"`
	// Misses counts reads degraded to the freshest available replica
	// after no replica could satisfy the level.
	Misses int64 `json:"misses"`
}

func (c *slaCounters) snapshot() map[string]SLAStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]SLAStats, 5)
	for lvl := ConsStrong; lvl <= ConsBounded; lvl++ {
		n := c.n[lvl]
		if n[slaHit]+n[slaCatchup]+n[slaMiss] == 0 {
			continue
		}
		out[lvl.String()] = SLAStats{Hits: n[slaHit], Catchups: n[slaCatchup], Misses: n[slaMiss]}
	}
	return out
}
