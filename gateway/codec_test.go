package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/service"
)

// countingBackend is a real service backend whose handler counts
// binary-wire traffic, so tests can assert the gateway→backend hop
// negotiates the compact format.
type countingBackend struct {
	addr      string
	binaryIn  atomic.Int64 // requests arriving with a binary body
	binaryAsk atomic.Int64 // requests asking for a binary reply
}

func startCountingBackend(t *testing.T) *countingBackend {
	t.Helper()
	e := service.NewEngine(service.Config{Workers: 4})
	inner := service.NewHandler(e)
	cb := &countingBackend{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.Header.Get("Content-Type"), service.MediaTypeBinary) {
			cb.binaryIn.Add(1)
		}
		if service.AcceptsBinary(r) {
			cb.binaryAsk.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	cb.addr = srv.URL
	return cb
}

// TestGatewayBinaryForwarding pins the end-to-end binary path: a
// binary-negotiating client through the gateway gets the same answers
// as a JSON client, and the gateway's backend hop itself speaks the
// binary wire format.
func TestGatewayBinaryForwarding(t *testing.T) {
	n := 8
	cb := startCountingBackend(t)
	g := newTestGateway(t, 1, cb.addr)
	srv := httptest.NewServer(NewHandler(g))
	t.Cleanup(srv.Close)

	jsonC := service.NewClient(srv.URL)
	binC := service.New(srv.URL, service.WithPathPrefix(""), service.WithAccept(service.MediaTypeBinary))
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := binC.UploadMatrix(ctx, "m", wire); err != nil {
		t.Fatalf("binary upload via gateway: %v", err)
	}
	resBin, err := binC.Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatalf("binary estimate via gateway: %v", err)
	}
	resJSON, err := jsonC.Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatalf("json estimate via gateway: %v", err)
	}
	if resBin.Estimate != sum || resJSON.Estimate != sum {
		t.Fatalf("estimates %v / %v, want %v", resBin.Estimate, resJSON.Estimate, sum)
	}
	items, err := binC.EstimateBatch(ctx, []service.Request{exactReq("m", n), exactReq("m", n)})
	if err != nil || len(items) != 2 || items[0].Result.Estimate != sum {
		t.Fatalf("binary batch via gateway: items=%v err=%v", items, err)
	}
	// The backend hop negotiated binary: bodies arrived in the compact
	// format and replies were requested in it, for BOTH front clients —
	// the gateway's codec seam is independent of the front negotiation.
	if cb.binaryIn.Load() == 0 {
		t.Fatal("no binary request bodies reached the backend")
	}
	if cb.binaryAsk.Load() == 0 {
		t.Fatal("no binary replies were requested from the backend")
	}

	// Front-side negotiation at the raw HTTP level: a binary request
	// with an explicit binary Accept gets a binary reply from the
	// gateway.
	body, err := service.AppendBinary(nil, exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", srv.URL+"/estimate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", service.MediaTypeBinary)
	hr.Header.Set("Accept", service.MediaTypeBinary)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary estimate: status %d (%s)", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, service.MediaTypeBinary) {
		t.Fatalf("gateway reply Content-Type %q, want binary", ct)
	}
	var res service.Result
	if err := service.DecodeBinary(raw, &res); err != nil {
		t.Fatalf("decode gateway binary reply: %v", err)
	}
	if res.Estimate != sum {
		t.Fatalf("binary reply estimate %v, want %v", res.Estimate, sum)
	}

	// Row updates ride the binary path too (they mutate the served
	// matrix, so they come after every estimate above).
	if _, err := binC.UpdateRows(ctx, "m", service.UpdateRequest{
		Updates: []service.RowUpdate{{Row: 0, Entries: [][2]int64{{1, 2}}}},
	}); err != nil {
		t.Fatalf("binary row update via gateway: %v", err)
	}

	// /v1 aliases mirror the legacy paths byte for byte.
	get := func(path string) []byte {
		t.Helper()
		gr, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer gr.Body.Close()
		if gr.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, gr.StatusCode)
		}
		b, err := io.ReadAll(gr.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if legacy, v1 := get("/matrices"), get("/v1/matrices"); !bytes.Equal(legacy, v1) {
		t.Fatalf("gateway catalog bodies differ:\n legacy %s\n v1     %s", legacy, v1)
	}
}

// gwCheckEnvelope requires body to be exactly the uniform error
// envelope with the expected code.
func gwCheckEnvelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("error body is not the envelope: %v (%s)", err, body)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("error code %q, want %q (%s)", env.Error.Code, wantCode, body)
	}
	if env.Error.Message == "" {
		t.Fatalf("empty error message (%s)", body)
	}
}

// TestGatewayErrorEnvelope pins the gateway tier's error vocabulary on
// the wire: its own codes, the service codes it shares, and the
// passthrough of backend envelope codes.
func TestGatewayErrorEnvelope(t *testing.T) {
	n := 4
	b1 := startBackend(t)
	_, gc := startGatewayServer(t, 1, b1.addr)
	ctx := context.Background()
	if _, err := gc.UploadMatrix(ctx, "m", identWire(n)); err != nil {
		t.Fatal(err)
	}

	do := func(baseURL, method, path, contentType, body string) (int, []byte) {
		t.Helper()
		hr, err := http.NewRequest(method, baseURL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			hr.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	// Unplaced matrix: the gateway's own placement 404.
	status, body := do(gc.BaseURL, "POST", "/estimate", "application/json",
		`{"matrix":"ghost","kind":"exact","a":{"rows":4,"cols":4,"entries":[[0,0,1]]}}`)
	if status != http.StatusNotFound {
		t.Fatalf("unplaced estimate: status %d (%s)", status, body)
	}
	gwCheckEnvelope(t, body, "matrix_not_found")

	// A backend-answered client error passes through with the
	// backend's own envelope code.
	status, body = do(gc.BaseURL, "POST", "/estimate", "application/json",
		`{"matrix":"m","kind":"no-such-kind","a":{"rows":4,"cols":4,"entries":[[0,0,1]]}}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad kind: status %d (%s)", status, body)
	}
	gwCheckEnvelope(t, body, "bad_request")

	// Unsupported media type at the gateway tier.
	status, body = do(gc.BaseURL, "POST", "/estimate", "text/csv", "i,j,v")
	if status != http.StatusUnsupportedMediaType {
		t.Fatalf("csv estimate: status %d (%s)", status, body)
	}
	gwCheckEnvelope(t, body, "unsupported_media_type")

	// Unknown backend on the admin surface.
	status, body = do(gc.BaseURL, "POST", "/admin/backends", "application/json",
		`{"op":"drain","addr":"http://nope:1"}`)
	if status != http.StatusNotFound {
		t.Fatalf("drain unknown backend: status %d (%s)", status, body)
	}
	gwCheckEnvelope(t, body, "unknown_backend")

	// Empty pool: placement-shaped calls are 503 no_backends.
	g2 := newTestGateway(t, 1)
	srv2 := httptest.NewServer(NewHandler(g2))
	t.Cleanup(srv2.Close)
	status, body = do(srv2.URL, "PUT", "/matrix/m", "application/json",
		`{"rows":1,"cols":1,"entries":[[0,0,1]]}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("put with no backends: status %d (%s)", status, body)
	}
	gwCheckEnvelope(t, body, "no_backends")

	// Every replica dead: 502 bad_gateway.
	b1.stop()
	status, body = do(gc.BaseURL, "POST", "/estimate", "application/json",
		`{"matrix":"m","kind":"exact","a":{"rows":4,"cols":4,"entries":[[0,0,1]]}}`)
	if status != http.StatusBadGateway {
		t.Fatalf("dead replicas: status %d (%s)", status, body)
	}
	gwCheckEnvelope(t, body, "bad_gateway")
}
