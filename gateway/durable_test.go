package gateway

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/service"
)

// TestIntegrationDurableResyncFromDisk is the crash-safe counterpart of
// the kill/restart churn test: three real backends each persisting to
// their own data directory, a gateway routing mixed update/estimate
// load, and a victim backend killed and restarted twice underneath it.
// A restarted durable backend recovers its matrices from its own disk
// before serving, so the probe resync finds nothing missing — the bar
// here is that the gateway's re-seed path is never exercised (Repairs
// and ReseedBytes stay zero while Resyncs advances) and no client sees
// an error. Updates deliberately target a matrix NOT placed on the
// victim: an update leg against a dead replica would drop it from the
// placement and force a heal-path re-seed, which is exactly the
// mechanism this test must prove stays idle.
func TestIntegrationDurableResyncFromDisk(t *testing.T) {
	const n = 8
	b1, b2, b3 := startDurableBackend(t), startDurableBackend(t), startDurableBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	var names []string
	placements := make(map[string][]string)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("m-%d", i)
		wire, _ := testMatrix(n)
		info, err := g.PutMatrix(ctx, name, wire)
		if err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
		names = append(names, name)
		placements[name] = info.Replicas
	}

	// With R = 2 over three backends every matrix excludes exactly one:
	// the backend excluded by names[0] is the victim, and names[0] is
	// the update target guaranteed not to live there.
	updName := names[0]
	var victim *testBackend
	for addr, tb := range byAddr {
		placed := false
		for _, r := range placements[updName] {
			if r == addr {
				placed = true
			}
		}
		if !placed {
			victim = tb
		}
	}
	if victim == nil {
		t.Fatalf("no backend excluded by %s (replicas %v)", updName, placements[updName])
	}
	var victimNames []string
	for _, name := range names {
		for _, r := range placements[name] {
			if r == victim.addr {
				victimNames = append(victimNames, name)
			}
		}
	}
	if len(victimNames) == 0 {
		t.Skip("placement left the victim empty; nothing to recover")
	}

	done := make(chan struct{})
	errCh := make(chan error, 64)
	var wg sync.WaitGroup

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(2000 + w)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				row := rnd.Intn(n)
				entries := [][2]int64{{int64(rnd.Intn(n)), rnd.Int63n(3) + 1}}
				if _, err := g.UpdateRows(ctx, updName, replaceRowReq(row, entries)); err != nil {
					errCh <- fmt.Errorf("updater %d iteration %d: %w", w, i, err)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				name := names[i%len(names)]
				if _, err := g.Estimate(ctx, exactReq(name, n)); err != nil {
					errCh <- fmt.Errorf("estimator %d iteration %d (%s): %w", w, i, name, err)
					return
				}
			}
		}(w)
	}

	st0 := g.Stats()
	for cycle := 0; cycle < 2; cycle++ {
		pre := g.Stats().Resyncs
		victim.stop()
		time.Sleep(80 * time.Millisecond)
		victim.restart()
		waitFor(t, "victim re-admitted", func() bool {
			st, ok := backendStatus(g, victim.addr)
			return ok && st.Healthy
		})
		waitFor(t, "probe resync of the returned victim", func() bool {
			return g.Stats().Resyncs > pre
		})
	}
	close(done)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The victim serves its placements again — and since the gateway's
	// re-seed counters did not move, the copies can only have come back
	// from its own data directory.
	for _, name := range victimNames {
		if !victim.holds(name) {
			t.Errorf("victim lost %s across the durable restart", name)
		}
	}
	st1 := g.Stats()
	t.Logf("durable churn stats: updates=%d estimates=%d resyncs=%d repairs=%d reseed_bytes=%d",
		st1.Updates, st1.Estimates, st1.Resyncs, st1.Repairs, st1.ReseedBytes)
	if st1.Resyncs <= st0.Resyncs {
		t.Errorf("probe resync never ran: resyncs %d -> %d", st0.Resyncs, st1.Resyncs)
	}
	if st1.Repairs != 0 {
		t.Errorf("gateway re-seeded %d replicas; durable recovery should leave repairs at zero", st1.Repairs)
	}
	if st1.ReseedBytes != 0 {
		t.Errorf("gateway re-uploaded %d wire bytes; durable recovery should re-seed nothing", st1.ReseedBytes)
	}
	if st1.Updates == 0 || st1.Estimates == 0 {
		t.Error("churn did not exercise the update/estimate paths")
	}

	// Every replica of every matrix answers exactly what the gateway's
	// retained wire implies — recovered copies included.
	for _, name := range names {
		g.mu.Lock()
		pm := g.matrices[name]
		g.mu.Unlock()
		want := wireSum(pm.wire)
		for _, addr := range pm.replicas {
			res, err := service.NewClient(addr).Estimate(ctx, exactReq(name, n))
			if err != nil {
				t.Fatalf("replica %s of %s after durable churn: %v", addr, name, err)
			}
			if res.Estimate != want {
				t.Errorf("replica %s of %s diverged: answers %v, retained wire implies %v", addr, name, res.Estimate, want)
			}
		}
	}
}
