package gateway

import (
	"fmt"
	"sort"

	"repro/internal/store"
	"repro/service"
)

// Wire-copy spilling: the gateway retains every placed matrix's wire
// form for repairs, resyncs, and rebalances, which pins the whole
// corpus in RAM. When Config.Store and WireCacheBudget are set, the
// largest retained copies past the budget are written to the store
// (reusing the service tier's snapshot payload framing) and dropped
// from memory; every path that needs a wire copy resolves it through
// wireOf, which reloads spilled copies on demand. The spill store is
// a cache of the placement table, not a recovery source: placements
// do not survive a gateway restart, so New wipes whatever a previous
// process left behind.

// wireSize estimates a wire copy's resident cost — the budget
// accounting unit, matching the encoded frame within a constant.
func wireSize(m service.Matrix) int64 {
	return 32 + 24*int64(len(m.Entries))
}

// wireOf resolves pm's full wire form: the in-memory copy while
// resident, the spill store's durable copy when spilled. Callers must
// not hold g.mu — the spilled branch is disk I/O.
func (g *Gateway) wireOf(pm *placedMatrix) (service.Matrix, error) {
	if !pm.spilled {
		return pm.wire, nil
	}
	snap, _, err := g.cfg.Store.Load(pm.info.Name)
	if err == nil && snap == nil {
		err = fmt.Errorf("no spilled copy on disk")
	}
	var m service.Matrix
	if err == nil {
		m, _, err = service.DecodeMatrixSnapshot(snap.Payload)
	}
	if err != nil {
		g.spillErrors.Add(1)
		return service.Matrix{}, fmt.Errorf("gateway: spilled wire of %q unavailable: %v", pm.info.Name, err)
	}
	g.spillLoads.Add(1)
	return m, nil
}

// maybeSpill enforces the wire-cache budget: while the resident
// retained-wire bytes exceed WireCacheBudget, the largest resident
// copies are saved to the spill store and dropped from memory.
// Each save runs outside g.mu; the swap re-checks the table pointer,
// so a racing update or replacement wins and its entry stays resident
// (the stale spill file is never read — wireOf consults the store only
// for entries marked spilled, and only a successful save marks one).
func (g *Gateway) maybeSpill() {
	if g.cfg.Store == nil || g.cfg.WireCacheBudget <= 0 {
		return
	}
	g.mu.Lock()
	var resident int64
	var cands []*placedMatrix
	for _, pm := range g.matrices {
		if !pm.spilled {
			resident += pm.wireBytes
			cands = append(cands, pm)
		}
	}
	g.mu.Unlock()
	if resident <= g.cfg.WireCacheBudget {
		return
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].wireBytes > cands[j].wireBytes })
	for _, pm := range cands {
		if resident <= g.cfg.WireCacheBudget {
			return
		}
		name := pm.info.Name
		payload := service.EncodeMatrixSnapshot(pm.wire, pm.info.Uploaded)
		if err := g.cfg.Store.SaveSnapshot(name, store.Snapshot{Epoch: g.spillSeq.Add(1), Payload: payload}); err != nil {
			g.spillErrors.Add(1)
			continue
		}
		g.mu.Lock()
		if cur, ok := g.matrices[name]; ok && cur == pm {
			npm := pm.clone()
			npm.wire = service.Matrix{Rows: pm.wire.Rows, Cols: pm.wire.Cols}
			npm.spilled = true
			g.matrices[name] = npm
			resident -= pm.wireBytes
			g.spills.Add(1)
		}
		g.mu.Unlock()
	}
}

// wipeSpillStore clears a previous process's spill files at startup.
// The placement table is in-memory only: a restarted gateway has no
// placements, so surviving spill copies describe matrices it no longer
// tracks and would only waste disk and confuse debugging.
func (g *Gateway) wipeSpillStore() {
	if g.cfg.Store == nil {
		return
	}
	names, err := g.cfg.Store.Names()
	if err != nil {
		g.spillErrors.Add(1)
		return
	}
	for _, name := range names {
		if err := g.cfg.Store.Delete(name); err != nil {
			g.spillErrors.Add(1)
		}
	}
}

// dropSpilled removes a deleted matrix's spill file, best-effort — a
// leftover file is unreachable (its table entry is gone) but costs
// disk until the next gateway restart wipes it.
func (g *Gateway) dropSpilled(name string) {
	if g.cfg.Store == nil {
		return
	}
	if err := g.cfg.Store.Delete(name); err != nil {
		g.spillErrors.Add(1)
	}
}
