package gateway

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/service"
)

// TestRebalanceFailureKeepsLiveReplicas pins the failed-move rule: a
// gain that does not land must leave the old replicas — whose copies
// were not deleted — in the placement table, so the matrix neither
// under-replicates nor has its survivors reaped as stragglers.
func TestRebalanceFailureKeepsLiveReplicas(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	names := make([]string, 6)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		if _, err := g.PutMatrix(ctx, names[i], wire); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// A backend that answers probes but rejects every upload joins the
	// pool: every matrix whose new top-2 includes it fails its move.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			http.Error(w, `{"error":"no room"}`, http.StatusInternalServerError)
			return
		}
		service.WriteJSON(w, http.StatusOK, service.Stats{})
	}))
	t.Cleanup(bad.Close)
	rep, err := g.AddBackend(ctx, bad.URL)
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if rep.Failed == 0 {
		t.Skip("no matrix ranked the bad backend in its top-2 (6 names; astronomically unlikely)")
	}
	// Every matrix must still list both original replicas and keep
	// answering at full strength.
	for _, pm := range g.Matrices() {
		if len(pm.Replicas) != 2 {
			t.Fatalf("%s under-replicated after failed rebalance: %v", pm.Name, pm.Replicas)
		}
		for _, r := range pm.Replicas {
			if r == bad.URL {
				t.Fatalf("%s placed on the backend that rejected it", pm.Name)
			}
		}
		res, err := g.Estimate(ctx, exactReq(pm.Name, n))
		if err != nil || res.Estimate != sum {
			t.Fatalf("estimate %s after failed rebalance: res=%v err=%v", pm.Name, res, err)
		}
	}
	// The survivors' copies must not be reaped as stragglers by a
	// probe resync.
	g.mu.Lock()
	h1, h2 := g.backends[b1.addr], g.backends[b2.addr]
	g.mu.Unlock()
	g.resyncBackend(h1)
	g.resyncBackend(h2)
	for _, name := range names {
		if !b1.holds(name) || !b2.holds(name) {
			t.Fatalf("resync reaped a live replica of %s after a failed rebalance", name)
		}
	}
}

// TestBatchItemRepair pins that a per-item "matrix not found" from a
// replica that lost its copy is re-routed (and the replica repaired)
// instead of surfacing to the batch client.
func TestBatchItemRepair(t *testing.T) {
	n := 8
	b1 := startBackend(t)
	g := newTestGateway(t, 1, b1.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatalf("put: %v", err)
	}
	// The replica silently loses the matrix (as a restart inside one
	// probe interval would look).
	if err := service.NewClient(b1.addr).DeleteMatrix(ctx, "m"); err != nil {
		t.Fatalf("backdoor delete: %v", err)
	}
	reqs := make([]service.Request, 6)
	for i := range reqs {
		reqs[i] = exactReq("m", n)
	}
	items, err := g.EstimateBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, item := range items {
		if item.Error != "" || item.Result == nil || item.Result.Estimate != sum {
			t.Fatalf("item %d leaked the lost replica to the client: %+v", i, item)
		}
	}
	if st := g.Stats(); st.Repairs == 0 {
		t.Fatal("batch item repair not recorded")
	}
}

// TestEvictionPrunesPlacement pins that a backend LRU-evicting a
// placed matrix (its registry capacity below its share) prunes the
// evicted copy from the table instead of leaving a dangling replica.
func TestEvictionPrunesPlacement(t *testing.T) {
	b1 := startBackendWith(t, service.Config{Workers: 2, Shards: 1, MaxMatrices: 1})
	g := newTestGateway(t, 1, b1.addr)
	ctx := context.Background()

	if _, err := g.PutMatrix(ctx, "first", identWire(4)); err != nil {
		t.Fatalf("put first: %v", err)
	}
	// The second placement evicts the first on the capacity-1 backend.
	if _, err := g.PutMatrix(ctx, "second", identWire(4)); err != nil {
		t.Fatalf("put second: %v", err)
	}
	var first *PlacementInfo
	for _, pm := range g.Matrices() {
		if pm.Name == "first" {
			pm := pm
			first = &pm
		}
	}
	if first == nil {
		t.Fatal("evicted matrix dropped from the table entirely (should stay, replica-less)")
	}
	if len(first.Replicas) != 0 {
		t.Fatalf("table still lists a replica for the evicted matrix: %v", first.Replicas)
	}
	if st := g.Stats(); st.LostReplicas == 0 {
		t.Fatal("lost replica not counted")
	}
}

// TestConcurrentDrainAndEstimates exercises admin drains racing
// estimate routing under -race (routeState vs the admin writes).
func TestConcurrentDrainAndEstimates(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatalf("put: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := g.Estimate(ctx, exactReq("m", n))
				if err != nil {
					errCh <- err
					return
				}
				if res.Estimate != sum {
					errCh <- fmt.Errorf("estimate = %v, want %v", res.Estimate, sum)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		addr := []string{b1.addr, b2.addr, b3.addr}[i%3]
		if _, err := g.DrainBackend(ctx, addr); err != nil {
			t.Fatalf("drain %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
		if _, err := g.AddBackend(ctx, addr); err != nil {
			t.Fatalf("un-drain %s: %v", addr, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("estimate failed during drain churn: %v", err)
	default:
	}
}
