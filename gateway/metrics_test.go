package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/service"
)

// scrapeGatewayMetrics fetches GET /metrics, asserts the content type
// and that the body lints clean, and returns the samples keyed by full
// series name (labels included).
func scrapeGatewayMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if bad := metrics.LintText(string(body)); len(bad) != 0 {
		t.Fatalf("exposition does not parse: %q", bad)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestGatewayMetricsEndpointE2E drives replicated traffic through a
// live gateway fronting two real backends and asserts GET /metrics
// reflects it: routing counters match /stats, the per-backend families
// cover the pool with correct health, and the per-backend latency
// histograms account for exactly the successful backend calls.
func TestGatewayMetricsEndpointE2E(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	srv := httptest.NewServer(NewHandler(g))
	t.Cleanup(srv.Close)
	gc := NewClient(srv.URL)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := gc.UploadMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if res, err := gc.Estimate(ctx, exactReq("m", n)); err != nil || res.Estimate != sum {
			t.Fatalf("estimate: res=%v err=%v", res, err)
		}
	}
	if _, err := gc.EstimateBatch(ctx, []service.Request{exactReq("m", n), exactReq("m", n)}); err != nil {
		t.Fatal(err)
	}

	st := g.Stats()
	got := scrapeGatewayMetrics(t, srv.URL)

	for series, want := range map[string]float64{
		"mpgw_estimates_total":     float64(st.Estimates),
		"mpgw_batches_total":       float64(st.Batches),
		"mpgw_placements_total":    float64(st.Placements),
		"mpgw_failovers_total":     float64(st.Failovers),
		"mpgw_repairs_total":       float64(st.Repairs),
		"mpgw_updates_total":       float64(st.Updates),
		"mpgw_lost_replicas_total": float64(st.LostReplicas),
		"mpgw_matrices":            float64(st.Matrices),
		"mpgw_replication":         float64(st.Replication),
	} {
		if got[series] != want {
			t.Errorf("%s = %v, want %v", series, got[series], want)
		}
	}

	// Per-backend families cover the whole pool and agree with /stats.
	var wantDur float64
	for _, bs := range st.Backends {
		if v := got[fmt.Sprintf("mpgw_backend_healthy{backend=%q}", bs.Addr)]; v != 1 {
			t.Errorf("backend %s healthy = %v, want 1", bs.Addr, v)
		}
		if v := got[fmt.Sprintf("mpgw_backend_requests_total{backend=%q}", bs.Addr)]; v != float64(bs.Requests) {
			t.Errorf("backend %s requests = %v, want %d", bs.Addr, v, bs.Requests)
		}
		if v := got[fmt.Sprintf("mpgw_backend_errors_total{backend=%q}", bs.Addr)]; v != float64(bs.Errors) {
			t.Errorf("backend %s errors = %v, want %d", bs.Addr, v, bs.Errors)
		}
		if v := got[fmt.Sprintf("mpgw_backend_matrices{backend=%q}", bs.Addr)]; v != float64(bs.Matrices) {
			t.Errorf("backend %s matrices = %v, want %d", bs.Addr, v, bs.Matrices)
		}
		wantDur += float64(bs.Requests - bs.Errors)
	}
	// The latency histograms hold exactly the successful backend calls.
	var durCount float64
	for _, bs := range st.Backends {
		durCount += got[fmt.Sprintf("mpgw_backend_request_duration_seconds_count{backend=%q}", bs.Addr)]
	}
	if durCount != wantDur {
		t.Errorf("backend duration histogram count = %v, want %v", durCount, wantDur)
	}
	if durCount == 0 {
		t.Error("no backend latency observations despite traffic")
	}

	// More traffic, second scrape: counters advance and stay monotone.
	if _, err := gc.Estimate(ctx, exactReq("m", n)); err != nil {
		t.Fatal(err)
	}
	got2 := scrapeGatewayMetrics(t, srv.URL)
	if got2["mpgw_estimates_total"] <= got["mpgw_estimates_total"] {
		t.Errorf("estimates_total did not advance: %v -> %v",
			got["mpgw_estimates_total"], got2["mpgw_estimates_total"])
	}
	for series, v := range got {
		if strings.Contains(series, "_total") || strings.Contains(series, "_count") {
			if got2[series] < v {
				t.Errorf("counter %s went backwards: %v -> %v", series, v, got2[series])
			}
		}
	}
}
