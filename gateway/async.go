package gateway

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/service"
)

// Async replication: the per-matrix ordered update log and the
// background apply loop that drains it to lagging replicas.
//
// In sync mode every committed row update reaches every replica before
// the call returns, so all replicas sit at the log head at all times.
// Async mode (Config.AsyncReplication) commits on a write quorum
// instead: the update lands in the matrix's ordered log, the replicas
// that acked it advance their applied-(epoch, seq) vector, and the
// apply loop replays the pending log suffix to everyone else in the
// background. The applied vector is also what SLA routing reads: a
// replica is eligible for a consistency level exactly when its vector
// is at or past the level's required version (see sla.go).
//
// Ordering discipline — what replaced the old gateway-wide updMu:
//
//   - a matrix's st.mu IS its commit order. Writers hold it across
//     their replica legs, so log-append order equals send order;
//   - the apply loop never contacts a backend without first reserving
//     its send slot (st.sending) under st.mu, so a background drain can
//     never interleave with a quorum write or an in-line catch-up to
//     the same backend — writers skip reserved backends, and drains
//     skip backends a writer could pick only while holding st.mu;
//   - full reseeds of in-placement replicas (probe resync, estimate-path
//     repair) take the same reservation; reseeds of backends outside
//     the current replica set (heal, rebalance gains) cannot collide
//     with the apply loop, which only walks pm.replicas.
//
// A reseed stamps the backend's applied entry to the snapshot version
// it uploaded — an unconditional overwrite, not a monotone advance,
// because a full upload really can move a replica's content backwards
// (the apply loop then drains the difference forward again, and the
// backends' per-generation idempotency keys keep the replay exact).

// logEntry is one committed row update in a matrix's ordered log.
type logEntry struct {
	seq       uint64 // version.seq the commit assigned
	ups       []service.RowUpdate
	delta     bool
	committed time.Time
}

// dedupeRec remembers one client-keyed committed update so a retried
// PATCH returns the original reply instead of applying twice.
type dedupeRec struct {
	rep service.UpdateReply
	ver version
}

// clientDedupeWindow bounds the per-matrix ring of remembered client
// idempotency keys. It needs to cover the retry window of in-flight
// writers, not history: a retry arrives within the client's timeout.
const clientDedupeWindow = 128

// matrixUpd is one matrix's update-ordering state: the log head, the
// bounded ordered log, the per-backend applied vector, and the send
// reservations that keep concurrent senders off the same backend. The
// struct is stable per name — placement installs reset its fields in
// place (resetLocked) rather than replacing the pointer, so a drain
// holding a reservation always releases it on the state routing reads.
type matrixUpd struct {
	mu   sync.Mutex
	head version
	// log holds the committed updates with seq in (logStart, head.seq];
	// log[i].seq == logStart+1+i. Entries past Config.UpdateLogMax are
	// trimmed from the front, advancing logStart — replicas behind it
	// need a full reseed rather than a replay.
	log      []logEntry
	logStart uint64
	// applied maps backend id → the version its copy has reached.
	applied map[string]version
	// sending marks backends with a replay or reseed in flight.
	sending map[string]bool
	// recent/recentKeys are the client-idempotency dedupe ring (FIFO).
	recent     map[uint64]dedupeRec
	recentKeys []uint64
}

func (st *matrixUpd) setAppliedLocked(id string, v version) {
	if st.applied == nil {
		st.applied = make(map[string]version)
	}
	st.applied[id] = v
}

// advanceAppliedLocked moves a backend's applied entry forward only —
// the form every patch ack uses (a stale ack must not regress a vector
// a newer send already advanced).
func (st *matrixUpd) advanceAppliedLocked(id string, v version) {
	if st.applied[id].Less(v) {
		st.setAppliedLocked(id, v)
	}
}

// reserveLocked claims a backend's send slot; false means another
// sender (a drain, a reseed) is already on it.
func (st *matrixUpd) reserveLocked(id string) bool {
	if st.sending[id] {
		return false
	}
	if st.sending == nil {
		st.sending = make(map[string]bool)
	}
	st.sending[id] = true
	return true
}

func (st *matrixUpd) release(id string) {
	st.mu.Lock()
	delete(st.sending, id)
	st.mu.Unlock()
}

// resetLocked reinstalls the state after a wholesale placement (a put,
// a chunked commit): a fresh epoch head, an empty log, every target
// replica stamped at the head. In-flight drains keep their sending
// slots (they clear them on exit) and detect the epoch change before
// sending anything stale (see runDrain).
func (st *matrixUpd) resetLocked(ver version, ids []string) {
	st.head = ver
	st.log = nil
	st.logStart = 0
	st.applied = make(map[string]version, len(ids))
	for _, id := range ids {
		st.applied[id] = ver
	}
	st.recent = nil
	st.recentKeys = nil
}

// pendingLocked returns the log suffix a backend at av still needs and
// whether a replay can cover it at all (false → full reseed: the
// backend is on another epoch or behind the trimmed window). The
// returned slice aliases the log; copy it before releasing st.mu.
func (st *matrixUpd) pendingLocked(av version) ([]logEntry, bool) {
	if av.AtLeast(st.head) {
		return nil, true
	}
	if av.epoch != st.head.epoch || av.seq < st.logStart {
		return nil, false
	}
	return st.log[av.seq-st.logStart:], true
}

// rememberLocked records a client-keyed committed update in the dedupe
// ring, evicting FIFO past the window.
func (st *matrixUpd) rememberLocked(key uint64, rep service.UpdateReply, ver version) {
	if key == 0 {
		return
	}
	if st.recent == nil {
		st.recent = make(map[uint64]dedupeRec, clientDedupeWindow)
	}
	if _, dup := st.recent[key]; dup {
		return
	}
	st.recent[key] = dedupeRec{rep: rep, ver: ver}
	st.recentKeys = append(st.recentKeys, key)
	if len(st.recentKeys) > clientDedupeWindow {
		delete(st.recent, st.recentKeys[0])
		st.recentKeys = st.recentKeys[1:]
	}
}

// updState returns the matrix's update state, creating it from the
// current placement on first touch; nil when the matrix is not placed.
// The placement paths always install state explicitly (resetUpdState),
// so the lazy branch only covers matrices placed before the state map
// existed — and stamps every replica at the table head, which is what
// a just-installed placement means.
func (g *Gateway) updState(name string) *matrixUpd {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st, ok := g.upd[name]; ok {
		return st
	}
	pm, ok := g.matrices[name]
	if !ok {
		return nil
	}
	st := &matrixUpd{}
	st.resetLocked(pm.ver, pm.replicas)
	g.upd[name] = st
	return st
}

// resetUpdState installs fresh update state for a wholesale placement.
func (g *Gateway) resetUpdState(name string, ver version, ids []string) {
	g.mu.Lock()
	st := g.upd[name]
	if st == nil {
		st = &matrixUpd{}
		g.upd[name] = st
	}
	g.mu.Unlock()
	st.mu.Lock()
	st.resetLocked(ver, ids)
	st.mu.Unlock()
}

// setApplied stamps a backend's applied entry after a full reseed — an
// unconditional overwrite (see the file comment).
func (g *Gateway) setApplied(name, id string, v version) {
	st := g.updState(name)
	if st == nil {
		return
	}
	st.mu.Lock()
	st.setAppliedLocked(id, v)
	st.mu.Unlock()
}

// appendLogLocked records one committed update at ver and trims the
// log to the configured window.
func (g *Gateway) appendLogLocked(st *matrixUpd, ver version, ups []service.RowUpdate, delta bool) {
	st.head = ver
	st.log = append(st.log, logEntry{seq: ver.seq, ups: ups, delta: delta, committed: time.Now()})
	if n := len(st.log) - g.cfg.UpdateLogMax; n > 0 {
		st.logStart = st.log[n-1].seq
		st.log = append(st.log[:0:0], st.log[n:]...)
	}
}

// catchUpLocked replays a backend's pending log suffix in line,
// advancing its applied vector entry by entry. Callers hold st.mu —
// the replay is thereby serialized against concurrent writers, which
// is exactly what makes in-line catch-up safe to interleave with
// quorum commits. Reports whether the backend reached the head.
func (g *Gateway) catchUpLocked(ctx context.Context, st *matrixUpd, name string, b *backend) bool {
	if st.sending[b.id] {
		return false
	}
	pending, ok := st.pendingLocked(st.applied[b.id])
	if !ok {
		return false // needs a full reseed; that is the apply loop's job
	}
	for _, ent := range pending {
		req := service.UpdateRequest{Updates: ent.ups, Delta: ent.delta, Key: ent.seq}
		if _, err := b.client.UpdateRows(ctx, name, req); err != nil {
			b.noteFailover(err, isTransportLevel(err))
			return false
		}
		st.advanceAppliedLocked(b.id, version{epoch: st.head.epoch, seq: ent.seq})
		g.asyncApplied.Add(1)
	}
	return true
}

// wakeApply nudges the apply loop without blocking (a full wake
// channel already guarantees a pass is coming).
func (g *Gateway) wakeApply() {
	select {
	case g.applyWake <- struct{}{}:
	default:
	}
}

// applyLoop is the async-mode background drainer: on every commit wake
// (and every ProbeInterval tick, covering backends that recover) it
// walks the placement table and brings lagging replicas to the log
// head — replaying the pending log suffix where it can, reseeding the
// full retained wire where it cannot.
func (g *Gateway) applyLoop() {
	defer g.probeWG.Done()
	tick := time.NewTicker(g.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-g.closed:
			return
		case <-g.applyWake:
		case <-tick.C:
		}
		g.drainAll()
	}
}

// drainAll runs one drain pass over every placed matrix.
func (g *Gateway) drainAll() {
	g.mu.Lock()
	names := make([]string, 0, len(g.matrices))
	for name := range g.matrices {
		names = append(names, name)
	}
	g.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		if g.isClosed() {
			return
		}
		g.drainMatrix(name)
	}
}

// drainJob is one backend's catch-up work within a drain pass: a log
// replay when entries is non-empty, a full reseed otherwise.
type drainJob struct {
	b       *backend
	entries []logEntry
}

// drainMatrix collects the lagging replicas of one matrix under st.mu
// — reserving each one's send slot — and drains them concurrently
// outside it.
func (g *Gateway) drainMatrix(name string) {
	pm, reps, err := g.replicaSnapshot(name)
	if err != nil {
		return
	}
	st := g.updState(name)
	if st == nil {
		return
	}
	var jobs []drainJob
	st.mu.Lock()
	head := st.head
	for _, b := range reps {
		if !b.eligible() || st.sending[b.id] {
			continue
		}
		av := st.applied[b.id]
		if av.AtLeast(head) {
			continue
		}
		pending, replayable := st.pendingLocked(av)
		if !st.reserveLocked(b.id) {
			continue
		}
		if !replayable {
			jobs = append(jobs, drainJob{b: b})
			continue
		}
		jobs = append(jobs, drainJob{b: b, entries: append([]logEntry(nil), pending...)})
	}
	st.mu.Unlock()
	if len(jobs) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j drainJob) {
			defer wg.Done()
			g.runDrain(name, pm, st, j, head)
		}(j)
	}
	wg.Wait()
}

// runDrain executes one backend's drain job while holding its send
// reservation. A 404 mid-replay (the backend lost the matrix) falls
// back to a full reseed; an epoch change under the drain (a wholesale
// placement replaced the matrix) aborts the replay and reseeds from
// the current table so a stale patch can never survive on top of the
// replacement's upload.
func (g *Gateway) runDrain(name string, pm *placedMatrix, st *matrixUpd, j drainJob, head version) {
	defer st.release(j.b.id)
	if len(j.entries) == 0 {
		g.reseedLagging(name, j.b)
		return
	}
	for _, ent := range j.entries {
		st.mu.Lock()
		stale := st.head.epoch != head.epoch
		st.mu.Unlock()
		if stale {
			g.reseedLagging(name, j.b)
			return
		}
		req := service.UpdateRequest{Updates: ent.ups, Delta: ent.delta, Key: ent.seq}
		ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ProbeTimeout)
		_, err := j.b.client.UpdateRows(ctx, name, req)
		cancel()
		if err != nil {
			var apiErr *service.APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
				g.reseedLagging(name, j.b)
				return
			}
			j.b.noteFailover(err, isTransportLevel(err))
			return // leave the vector where it is; the next pass retries
		}
		st.mu.Lock()
		st.advanceAppliedLocked(j.b.id, version{epoch: head.epoch, seq: ent.seq})
		st.mu.Unlock()
		g.asyncApplied.Add(1)
	}
	_ = pm // the snapshot pins nothing beyond the replica handles
}

// reseedLagging ships the current retained wire to a backend whose log
// replay is impossible (trimmed window, epoch change, lost copy) and
// stamps its applied vector at the snapshot version. Callers hold the
// backend's send reservation.
func (g *Gateway) reseedLagging(name string, b *backend) {
	g.mu.Lock()
	pm, ok := g.matrices[name]
	g.mu.Unlock()
	if !ok {
		return
	}
	wire, err := g.wireOf(pm)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(g.baseCtx, healUploadTimeout)
	defer cancel()
	if _, err := g.uploadTo(ctx, b, name, wire); err != nil {
		b.noteFailover(err, isTransportLevel(err))
		return
	}
	g.setApplied(name, b.id, pm.ver)
	g.asyncReseeds.Add(1)
}
