package gateway

import (
	"sort"
	"time"

	"repro/internal/metrics"
)

// gatewayMetrics wires a Gateway into a metrics.Registry served at
// GET /metrics, following the same split as the service layer: the
// routing hot path touches exactly one live instrument (the per-backend
// request-duration histogram, observed where recordResult already
// folds the outcome in), while every counter the gateway already keeps
// exports as a func-backed family sampled from Stats at scrape time —
// zero added routing cost, and /metrics can never disagree with /stats.
type gatewayMetrics struct {
	reg *metrics.Registry
	// backendDur is the per-backend request-duration vec. Backends join
	// the pool at runtime (admin add), so handles are resolved when the
	// backend is constructed, not ahead of time.
	backendDur *metrics.HistogramVec
}

func newGatewayMetrics(g *Gateway) *gatewayMetrics {
	reg := metrics.NewRegistry()
	m := &gatewayMetrics{reg: reg}

	m.backendDur = reg.NewHistogramVec("mpgw_backend_request_duration_seconds",
		"Latency of successful backend calls on the estimate and batch routing paths, by backend.",
		nil, "backend")

	type counterDef struct {
		name, help string
		read       func(s *Stats) int64
	}
	for _, def := range []counterDef{
		{"mpgw_estimates_total", "Estimate queries routed, batch-fallback re-routes included.",
			func(s *Stats) int64 { return s.Estimates }},
		{"mpgw_batches_total", "Batch calls scattered across replicas.",
			func(s *Stats) int64 { return s.Batches }},
		{"mpgw_placements_total", "Matrices placed (initial puts and chunked commits).",
			func(s *Stats) int64 { return s.Placements }},
		{"mpgw_failovers_total", "Queries answered by a replica other than the first one tried.",
			func(s *Stats) int64 { return s.Failovers }},
		{"mpgw_retries_total", "Per-query routing attempts beyond the first.",
			func(s *Stats) int64 { return s.Retries }},
		{"mpgw_repairs_total", "Replica copies re-seeded from the gateway's retained wire forms.",
			func(s *Stats) int64 { return s.Repairs }},
		{"mpgw_rebalanced_total", "Matrices moved by admin add/drain/remove rebalances.",
			func(s *Stats) int64 { return s.Rebalanced }},
		{"mpgw_updates_total", "Replicated row-update requests, failed ones included.",
			func(s *Stats) int64 { return s.Updates }},
		{"mpgw_update_reverts_total", "Row updates rolled back all-or-nothing after a replica leg failed.",
			func(s *Stats) int64 { return s.UpdateReverts }},
		{"mpgw_lost_replicas_total", "Replica copies evicted by their backend and pruned from the placement table.",
			func(s *Stats) int64 { return s.LostReplicas }},
		{"mpgw_resyncs_total", "Returning backends reconciled with the placement table by the probe loop.",
			func(s *Stats) int64 { return s.Resyncs }},
		{"mpgw_reseed_bytes_total", "Wire bytes re-uploaded to returning backends by probe resyncs.",
			func(s *Stats) int64 { return s.ReseedBytes }},
		{"mpgw_spills_total", "Retained wire copies written to the spill store by the wire-cache budget.",
			func(s *Stats) int64 { return s.Spills }},
		{"mpgw_spill_loads_total", "Spilled wire copies loaded back from the store.",
			func(s *Stats) int64 { return s.SpillLoads }},
		{"mpgw_spill_errors_total", "Failed spill-store operations.",
			func(s *Stats) int64 { return s.SpillErrors }},
		{"mpgw_async_applied_total", "Update-log entries replayed to lagging replicas (apply loop and in-line catch-ups).",
			func(s *Stats) int64 { return s.AsyncApplied }},
		{"mpgw_async_reseeds_total", "Full-wire reseeds of replicas whose lag a log replay could not cover.",
			func(s *Stats) int64 { return s.AsyncReseeds }},
	} {
		read := def.read
		reg.CounterFunc(def.name, def.help, nil, func() []metrics.Sample {
			s := g.Stats()
			return []metrics.Sample{{Value: float64(read(&s))}}
		})
	}
	reg.GaugeFunc("mpgw_matrices", "Matrices currently placed.",
		nil, func() []metrics.Sample {
			g.mu.Lock()
			n := len(g.matrices)
			g.mu.Unlock()
			return []metrics.Sample{{Value: float64(n)}}
		})
	reg.GaugeFunc("mpgw_spilled_matrices", "Placements whose wire copy currently lives in the spill store.",
		nil, func() []metrics.Sample {
			g.mu.Lock()
			n := 0
			for _, pm := range g.matrices {
				if pm.spilled {
					n++
				}
			}
			g.mu.Unlock()
			return []metrics.Sample{{Value: float64(n)}}
		})
	reg.GaugeFunc("mpgw_wire_bytes", "Resident retained-wire bytes governed by the wire-cache budget.",
		nil, func() []metrics.Sample {
			g.mu.Lock()
			var total int64
			for _, pm := range g.matrices {
				if !pm.spilled {
					total += pm.wireBytes
				}
			}
			g.mu.Unlock()
			return []metrics.Sample{{Value: float64(total)}}
		})
	reg.GaugeFunc("mpgw_replication", "Configured replication factor R.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(g.cfg.Replication)}}
		})
	reg.GaugeFunc("mpgw_uptime_seconds", "Time since the gateway started serving.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: time.Since(g.start).Seconds()}}
		})
	reg.GaugeFunc("mpgw_async_replication", "Whether updates commit on a write quorum instead of every replica (1 = async).",
		nil, func() []metrics.Sample {
			var v float64
			if g.cfg.AsyncReplication {
				v = 1
			}
			return []metrics.Sample{{Value: v}}
		})
	reg.GaugeFunc("mpgw_write_quorum", "Configured async-mode ack quorum W.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(g.cfg.WriteQuorum)}}
		})
	reg.GaugeFunc("mpgw_update_log_entries", "Retained update-log entries summed over all placed matrices.",
		nil, func() []metrics.Sample {
			s := g.Stats()
			return []metrics.Sample{{Value: float64(s.UpdateLogEntries)}}
		})
	reg.GaugeFunc("mpgw_sessions", "Live consistency sessions.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(g.sessions.len())}}
		})
	// SLA read outcomes as one labeled family: level × outcome, sampled
	// from the same counters behind /stats so the two can never
	// disagree. Levels with no traffic emit no series.
	reg.CounterFunc("mpgw_sla_requests_total", "SLA-routed reads by consistency level and outcome (hit, catchup, miss).",
		[]string{"level", "outcome"}, func() []metrics.Sample {
			snap := g.sla.snapshot()
			levels := make([]string, 0, len(snap))
			for lvl := range snap {
				levels = append(levels, lvl)
			}
			sort.Strings(levels)
			out := make([]metrics.Sample, 0, 3*len(levels))
			for _, lvl := range levels {
				st := snap[lvl]
				out = append(out,
					metrics.Sample{Labels: []string{lvl, "hit"}, Value: float64(st.Hits)},
					metrics.Sample{Labels: []string{lvl, "catchup"}, Value: float64(st.Catchups)},
					metrics.Sample{Labels: []string{lvl, "miss"}, Value: float64(st.Misses)})
			}
			return out
		})

	// Per-backend breakdown, one family per field so types stay honest
	// (health and occupancy are gauges, traffic counters are counters).
	boolVal := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	type backendDef struct {
		name, help string
		kind       string // "counter" or "gauge"
		read       func(bs *BackendStatus) float64
	}
	for _, def := range []backendDef{
		{"mpgw_backend_healthy", "Whether the backend's last probe or request succeeded (1 = healthy).", "gauge",
			func(bs *BackendStatus) float64 { return boolVal(bs.Healthy) }},
		{"mpgw_backend_draining", "Whether the backend is excluded from routing pending removal (1 = draining).", "gauge",
			func(bs *BackendStatus) float64 { return boolVal(bs.Draining) }},
		{"mpgw_backend_inflight", "Requests currently outstanding against the backend.", "gauge",
			func(bs *BackendStatus) float64 { return float64(bs.Inflight) }},
		{"mpgw_backend_matrices", "Matrices currently placed on the backend.", "gauge",
			func(bs *BackendStatus) float64 { return float64(bs.Matrices) }},
		{"mpgw_backend_consec_fails", "Current consecutive probe-failure streak (drives probe backoff).", "gauge",
			func(bs *BackendStatus) float64 { return float64(bs.ConsecFails) }},
		{"mpgw_backend_requests_total", "Requests sent to the backend, failed ones included.", "counter",
			func(bs *BackendStatus) float64 { return float64(bs.Requests) }},
		{"mpgw_backend_errors_total", "Failed requests among the backend's requests.", "counter",
			func(bs *BackendStatus) float64 { return float64(bs.Errors) }},
		{"mpgw_backend_failovers_total", "Requests that failed over away from this backend to another replica.", "counter",
			func(bs *BackendStatus) float64 { return float64(bs.Failovers) }},
	} {
		read := def.read
		collect := func() []metrics.Sample {
			backends := g.Backends()
			out := make([]metrics.Sample, len(backends))
			for i := range backends {
				out[i] = metrics.Sample{Labels: []string{backends[i].Addr}, Value: read(&backends[i])}
			}
			return out
		}
		if def.kind == "counter" {
			reg.CounterFunc(def.name, def.help, []string{"backend"}, collect)
		} else {
			reg.GaugeFunc(def.name, def.help, []string{"backend"}, collect)
		}
	}
	return m
}

// Metrics returns the gateway's metrics registry — the families backing
// GET /metrics — so embedders can mount the exposition on their own mux
// or register additional families alongside the gateway's.
func (g *Gateway) Metrics() *metrics.Registry { return g.met.reg }
