package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/service"
)

// Gateway errors. The HTTP layer maps them to statuses (see
// writeError in http.go); service errors wrapped by gateway paths keep
// their service-side status mapping.
var (
	// ErrNoBackends is returned when no backend is eligible to take a
	// placement or a query (mapped to 503).
	ErrNoBackends = errors.New("gateway: no eligible backends")
	// ErrAllReplicasFailed is returned when every replica of a matrix
	// failed to answer a query (mapped to 502).
	ErrAllReplicasFailed = errors.New("gateway: all replicas failed")
	// ErrUnknownBackend is returned by admin operations naming a
	// backend that is not in the pool (mapped to 404).
	ErrUnknownBackend = errors.New("gateway: unknown backend")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("gateway: closed")
)

// Config parameterizes a Gateway. Zero values select the defaults.
type Config struct {
	// Backends are the initial backend base URLs (e.g.
	// "http://127.0.0.1:8081"). More can be added at runtime through
	// the admin API.
	Backends []string
	// Replication is the number of backends each matrix is placed on
	// (R). Placements use the top R of the matrix's rendezvous ranking
	// over the eligible backends; fewer than R eligible backends
	// degrade to what is available. Default 2.
	Replication int
	// ProbeInterval is the health prober's base period between probes
	// of a healthy backend. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe call. Default 2s.
	ProbeTimeout time.Duration
	// ProbeBackoffMax caps the exponential backoff between probes of a
	// failing backend (ProbeInterval·2^consecutive-failures, capped
	// here). Default 30s.
	ProbeBackoffMax time.Duration
	// UploadTTL bounds how long an idle fan-out chunked upload may sit
	// staged at the gateway before it is garbage-collected (legs on the
	// backends are aborted best-effort). Default 2 minutes.
	UploadTTL time.Duration
	// HTTPClient is the shared client for backend calls. Default
	// http.DefaultClient.
	HTTPClient *http.Client
	// Store, when set with WireCacheBudget, is the durable spill target
	// for retained wire copies (see spill.go). The gateway owns the
	// store's content and wipes it on New; do not share a data directory
	// with a backend.
	Store store.Store
	// WireCacheBudget caps the bytes of retained wire copies held
	// resident before the largest are spilled to Store. 0 (the default)
	// disables spilling — every copy stays in memory.
	WireCacheBudget int64
	// AsyncReplication switches row updates from synchronous
	// all-replica commits to write-quorum commits with background
	// propagation: an update returns once WriteQuorum replicas applied
	// it, and the apply loop drains the per-matrix update log to the
	// rest (see async.go). Sync remains the default: every replica then
	// satisfies every consistency level by construction, and the extra
	// write latency is the price of never serving a stale read.
	AsyncReplication bool
	// WriteQuorum is how many replicas must apply a row update before
	// it commits in async mode (clamped to the live replica count;
	// ignored in sync mode). Default 1.
	WriteQuorum int
	// UpdateLogMax bounds each matrix's in-memory ordered update log.
	// A replica lagging past the window is reseeded from the retained
	// wire instead of replayed. Default 1024.
	UpdateLogMax int
	// SessionTTL is how long an idle consistency session (monotonic /
	// read-my-writes state, see sla.go) is retained. Default 10m.
	SessionTTL time.Duration
}

func (c *Config) setDefaults() {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 30 * time.Second
	}
	if c.UploadTTL <= 0 {
		c.UploadTTL = 2 * time.Minute
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.WriteQuorum <= 0 {
		c.WriteQuorum = 1
	}
	if c.UpdateLogMax <= 0 {
		c.UpdateLogMax = 1024
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
}

// placedMatrix is one placement-table entry: the catalog info, the
// retained wire form (what rebalancing and replica repair re-upload —
// the gateway is the placement's source of truth, so it keeps the
// bytes), and the backends currently holding the matrix. Entries are
// replaced wholesale (copy-on-write), so a snapshot taken under the
// gateway lock stays consistent after release. needsHeal marks an
// entry whose replica set was shrunk by a row update dropping an
// unreachable backend; the prober's heal pass re-places it from the
// retained wire until it is back at full replication.
type placedMatrix struct {
	info service.MatrixInfo
	wire service.Matrix
	// wireBytes is the copy's budget-accounted resident size (see
	// wireSize); it describes the full wire form even while spilled.
	wireBytes int64
	// spilled marks a copy whose Entries were dropped from memory; the
	// durable form lives in the spill store and wireOf reloads it.
	spilled   bool
	replicas  []string
	needsHeal bool
	// ver is the version of the retained wire: a fresh epoch at every
	// wholesale install, seq advanced per committed row update. It is
	// the matrix's update-log head (async.go) and the reference every
	// reseed stamps into the applied vector.
	ver version
}

// clone returns a copy for copy-on-write replacement: same wire and
// flags, own replica slice. Callers adjust fields before installing.
func (pm *placedMatrix) clone() *placedMatrix {
	cp := *pm
	cp.replicas = append([]string(nil), pm.replicas...)
	return &cp
}

// Gateway is the multi-backend front tier: it owns a health-checked
// pool of mpserver backends, places matrices across them by rendezvous
// hashing with replication, and routes the service API against the
// placement — estimates to the least-busy healthy replica with
// failover, uploads fanned out to every replica all-or-nothing.
type Gateway struct {
	cfg Config

	// mu guards the pool, placement table, and upload staging maps.
	// Never held across a backend network call: fan-out paths snapshot
	// under mu, call outside it, and re-acquire to commit.
	mu       sync.Mutex
	backends map[string]*backend
	matrices map[string]*placedMatrix
	uploads  map[string]*fanoutUpload

	// topoMu serializes topology changes (admin add/drain/remove and
	// their rebalances, write side) against each other and against
	// placements (PutMatrix and chunked commits, read side): a backend
	// removed mid-placement would otherwise leave a matrix tabled only
	// on an id no longer in the pool, unroutable until the next admin
	// operation. Held across network calls — admin operations are rare
	// and placements may share the read side freely.
	topoMu sync.RWMutex

	// upd holds each matrix's update-ordering state (log, applied
	// vectors, send reservations — see async.go). The map itself is
	// guarded by mu; each entry carries its own lock, which replaced
	// the old gateway-wide updMu as the per-matrix commit order.
	upd map[string]*matrixUpd

	// epochSeq assigns version epochs to wholesale placement installs.
	epochSeq atomic.Uint64
	// applyWake nudges the async apply loop after a quorum commit.
	applyWake chan struct{}

	// sessions and sla are the consistency-SLA state: session floors
	// for monotonic/rmw routing and the per-level outcome counters.
	sessions *sessionStore
	sla      slaCounters

	upSeq         atomic.Uint64
	estimates     atomic.Int64
	batches       atomic.Int64
	failovers     atomic.Int64
	retries       atomic.Int64
	repairs       atomic.Int64
	placements    atomic.Int64
	rebalanced    atomic.Int64
	lostReplicas  atomic.Int64
	updates       atomic.Int64
	updateReverts atomic.Int64
	resyncs       atomic.Int64
	reseedBytes   atomic.Int64
	spills        atomic.Int64
	spillLoads    atomic.Int64
	spillErrors   atomic.Int64
	spillSeq      atomic.Uint64
	asyncApplied  atomic.Int64
	asyncReseeds  atomic.Int64

	met *gatewayMetrics

	start     time.Time
	closed    chan struct{}
	closeOnce sync.Once
	// baseCtx parents every prober-initiated call (probes, resyncs),
	// so Close can abort them instead of waiting out their timeouts.
	baseCtx    context.Context
	cancelBase context.CancelFunc
	probeWG    sync.WaitGroup
}

// New returns a gateway fronting the configured backends and starts
// its health prober. Close releases it.
func New(cfg Config) *Gateway {
	cfg.setDefaults()
	g := &Gateway{
		cfg:       cfg,
		backends:  make(map[string]*backend),
		matrices:  make(map[string]*placedMatrix),
		uploads:   make(map[string]*fanoutUpload),
		upd:       make(map[string]*matrixUpd),
		applyWake: make(chan struct{}, 1),
		sessions:  newSessionStore(cfg.SessionTTL),
		start:     time.Now(),
		closed:    make(chan struct{}),
	}
	g.baseCtx, g.cancelBase = context.WithCancel(context.Background())
	g.wipeSpillStore()
	g.met = newGatewayMetrics(g)
	for _, addr := range cfg.Backends {
		if addr == "" {
			continue
		}
		b := newBackend(addr, cfg.HTTPClient)
		b.dur = g.met.backendDur.With(addr)
		g.backends[addr] = b
	}
	g.probeWG.Add(1)
	go g.probeLoop()
	if cfg.AsyncReplication {
		g.probeWG.Add(1)
		go g.applyLoop()
	}
	return g
}

// Close stops the health prober — aborting any in-flight probe or
// resync — and makes every subsequent operation fail with ErrClosed.
// In-flight client requests finish.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.closed)
		g.cancelBase()
	})
	g.probeWG.Wait()
}

func (g *Gateway) isClosed() bool {
	select {
	case <-g.closed:
		return true
	default:
		return false
	}
}

// backendIDs returns the ids of backends passing keep, sorted for
// deterministic placement. Callers hold g.mu.
func (g *Gateway) backendIDsLocked(keep func(*backend) bool) []string {
	ids := make([]string, 0, len(g.backends))
	for id, b := range g.backends {
		if keep == nil || keep(b) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// placementTargets picks the backends a matrix should live on right
// now: the top Replication of its rendezvous ranking over the
// placeable (healthy, non-draining) backends.
func (g *Gateway) placementTargets(name string) []*backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := placeOn(rankBackends(g.backendIDsLocked((*backend).placeable), name), g.cfg.Replication)
	out := make([]*backend, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.backends[id])
	}
	return out
}

// replicaSnapshot resolves a matrix's current placement to live
// backend handles plus the table entry.
func (g *Gateway) replicaSnapshot(name string) (*placedMatrix, []*backend, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pm, ok := g.matrices[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", service.ErrMatrixNotFound, name)
	}
	reps := make([]*backend, 0, len(pm.replicas))
	for _, id := range pm.replicas {
		if b, ok := g.backends[id]; ok {
			reps = append(reps, b)
		}
	}
	return pm, reps, nil
}

// uploadTo ships a wire matrix to one backend and reconciles any LRU
// evictions the insert caused: a backend whose registry capacity is
// smaller than its share of placements evicts placed matrices on
// upload, and silently keeping the evicted names in the table would
// route queries at copies that no longer exist. The pruned entries
// stay placed on their surviving replicas (an empty replica list makes
// the loss visible as a routing 503, not a lie). Backends should be
// provisioned with -max-matrices above their expected share — the
// LostReplicas stat counts how often that assumption broke.
func (g *Gateway) uploadTo(ctx context.Context, b *backend, name string, m service.Matrix) (service.MatrixInfo, error) {
	rep, err := b.client.UploadMatrixFull(ctx, name, m)
	if err != nil {
		return service.MatrixInfo{}, err
	}
	if len(rep.Evicted) > 0 {
		g.mu.Lock()
		for _, victim := range rep.Evicted {
			pm, ok := g.matrices[victim]
			if !ok {
				continue
			}
			kept := make([]string, 0, len(pm.replicas))
			for _, id := range pm.replicas {
				if id != b.id {
					kept = append(kept, id)
				}
			}
			if len(kept) != len(pm.replicas) {
				npm := pm.clone()
				npm.replicas = kept
				g.matrices[victim] = npm
				g.lostReplicas.Add(1)
			}
		}
		g.mu.Unlock()
	}
	return rep.MatrixInfo, nil
}

// fanout runs op against every backend concurrently and returns the
// per-backend errors (nil entries for successes) plus the first error
// in backend order.
func fanout(backends []*backend, op func(i int, b *backend) error) (errs []error, first error) {
	errs = make([]error, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			errs[i] = op(i, b)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return errs, err
		}
	}
	return errs, nil
}

// PutMatrix validates and places a matrix: it uploads the wire form to
// every target replica concurrently, and on any failure deletes the
// copies that landed (all-or-nothing) and reports the failure. On
// success the placement table records the matrix, its replicas, and
// the retained wire form rebalancing re-uploads from.
func (g *Gateway) PutMatrix(ctx context.Context, name string, m service.Matrix) (PlacementInfo, error) {
	if g.isClosed() {
		return PlacementInfo{}, ErrClosed
	}
	if name == "" {
		return PlacementInfo{}, fmt.Errorf("%w: empty matrix name", service.ErrBadRequest)
	}
	// Shared with other placements, exclusive against admin topology
	// changes: the target set picked here stays in the pool until the
	// table entry is installed.
	g.topoMu.RLock() //mp:lockio-ok audited: shared topology pin held across replica legs so admin changes cannot race a placement install
	defer g.topoMu.RUnlock()
	targets := g.placementTargets(name)
	if len(targets) == 0 {
		return PlacementInfo{}, ErrNoBackends
	}
	infos := make([]service.MatrixInfo, len(targets))
	errs, first := fanout(targets, func(i int, b *backend) error {
		var err error
		infos[i], err = g.uploadTo(ctx, b, name, m)
		return err
	})
	if first != nil {
		// All-or-nothing: tear the successful copies back down so no
		// replica serves a matrix the gateway does not consider placed.
		for i, err := range errs {
			if err == nil {
				delCtx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
				_ = targets[i].client.DeleteMatrix(delCtx, name)
				cancel()
			}
		}
		return PlacementInfo{}, fmt.Errorf("gateway: replicated put of %q failed: %w", name, first)
	}
	ids := make([]string, len(targets))
	for i, b := range targets {
		ids[i] = b.id
	}
	ver := version{epoch: g.epochSeq.Add(1)}
	pm := &placedMatrix{info: infos[0], wire: m, wireBytes: wireSize(m), replicas: ids, ver: ver}
	g.mu.Lock()
	g.matrices[name] = pm
	g.mu.Unlock()
	g.resetUpdState(name, ver, ids)
	g.placements.Add(1)
	g.maybeSpill()
	return PlacementInfo{MatrixInfo: pm.info, Replicas: ids}, nil
}

// DeleteMatrix removes a matrix from every replica holding it and from
// the placement table. Replica deletions are best-effort (a down
// replica's copy is cleaned up by the straggler sweep when it
// returns); an unknown name is ErrMatrixNotFound.
func (g *Gateway) DeleteMatrix(ctx context.Context, name string) error {
	if g.isClosed() {
		return ErrClosed
	}
	_, reps, err := g.replicaSnapshot(name)
	if err != nil {
		return err
	}
	g.mu.Lock()
	delete(g.matrices, name)
	delete(g.upd, name)
	g.mu.Unlock()
	g.dropSpilled(name)
	_, _ = fanout(reps, func(_ int, b *backend) error {
		return b.client.DeleteMatrix(ctx, name)
	})
	return nil
}

// Matrices lists the placed matrices with their replica sets, sorted
// by name.
func (g *Gateway) Matrices() []PlacementInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]PlacementInfo, 0, len(g.matrices))
	for _, pm := range g.matrices {
		out = append(out, PlacementInfo{MatrixInfo: pm.info, Replicas: pm.replicas})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// failoverable classifies a replica error: transport-level failures
// (no HTTP answer) and answered 404/429/502/503 warrant trying the
// next replica — the backend is gone, restarting, shedding load,
// closing, or has lost the replica — while any other answered error is
// the query's own fault and is returned to the client as-is. A 429 is
// answered, so it never demotes health; noteFailover instead parks the
// backend for its advertised Retry-After (see backend.saturatedUntil).
func failoverable(err error) (ok, transportLevel bool) {
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusNotFound, http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
			return true, false
		}
		return false, false
	}
	return true, true
}

// routeOrder orders a matrix's replicas for one query: eligible
// (healthy, non-draining) replicas first, least busy first, then
// ineligible non-draining replicas as a last resort — a probe can lag
// a recovery, and a request that would otherwise fail outright is
// worth one try against a suspect replica. nEligible is how many of
// the returned backends are in the eligible prefix; load-balancing
// decisions must confine themselves to it so an idle-because-dead
// suspect never outbids a busy healthy replica.
func routeOrder(reps []*backend) (order []*backend, nEligible int) {
	var suspect []*backend
	for _, b := range reps {
		healthy, draining := b.routeState()
		switch {
		case healthy && !draining:
			order = append(order, b)
		case !draining:
			suspect = append(suspect, b)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].inflight.Load() < order[j].inflight.Load()
	})
	nEligible = len(order)
	return append(order, suspect...), nEligible
}

// callEstimate runs one query against one backend, maintaining its
// in-flight gauge and counters.
func (b *backend) callEstimate(ctx context.Context, req service.Request) (*service.Result, error) {
	b.inflight.Add(1)
	start := time.Now()
	res, err := b.client.Estimate(ctx, req)
	b.inflight.Add(-1)
	b.recordResult(time.Since(start), err != nil)
	return res, err
}

// repairReplica re-uploads a placed matrix to a replica that answered
// 404 for it — the backend restarted (losing its in-memory registry)
// between the prober's resync passes. Returns true when the replica
// holds the matrix again. The upload holds the backend's send slot so
// it cannot interleave with an apply-loop drain; a reserved slot means
// a drain is already fixing the replica, so the repair yields.
func (g *Gateway) repairReplica(ctx context.Context, b *backend, name string) bool {
	g.mu.Lock()
	pm, ok := g.matrices[name]
	g.mu.Unlock()
	if !ok {
		return false
	}
	st := g.updState(name)
	if st != nil {
		st.mu.Lock()
		ok := st.reserveLocked(b.id)
		st.mu.Unlock()
		if !ok {
			return false
		}
		defer st.release(b.id)
	}
	wire, err := g.wireOf(pm)
	if err != nil {
		return false
	}
	if _, err := g.uploadTo(ctx, b, name, wire); err != nil {
		return false
	}
	g.setApplied(name, b.id, pm.ver)
	g.repairs.Add(1)
	return true
}

// Estimate routes one query to the least-busy healthy replica of its
// matrix, failing over to the next replica on transport errors (and on
// answered 404/429/502/503 — see failoverable). A replica that lost
// the matrix to a restart is repaired in line from the gateway's
// retained copy and retried. Answered client errors (bad parameters
// and the like) are returned without failover. The query runs under
// the default (strong) consistency SLA with no session — exactly the
// pre-SLA behavior in sync mode, where every replica is always at the
// update-log head.
func (g *Gateway) Estimate(ctx context.Context, req service.Request) (*service.Result, error) {
	res, _, err := g.estimateSLA(ctx, req, SLA{}, "")
	return res, err
}

// estimateSLA routes one query under a consistency SLA: candidates are
// narrowed to the replicas whose applied version satisfies the level
// (see slaRoute), then tried in order with the usual failover and
// in-line 404 repair. It returns the version of the replica that
// answered — the MP-Version echo and the session's monotonic floor.
func (g *Gateway) estimateSLA(ctx context.Context, req service.Request, sla SLA, sess string) (*service.Result, version, error) {
	if g.isClosed() {
		return nil, version{}, ErrClosed
	}
	g.estimates.Add(1)
	_, reps, err := g.replicaSnapshot(req.Matrix)
	if err != nil {
		return nil, version{}, err
	}
	order, nEligible := routeOrder(reps)
	if len(order) == 0 {
		return nil, version{}, fmt.Errorf("%w: matrix %q has no routable replica", ErrNoBackends, req.Matrix)
	}
	cands, outcome := g.slaRoute(ctx, req.Matrix, order, nEligible, sla, sess)
	g.sla.note(sla.Level, outcome)
	var lastErr error
	for attempt, b := range cands {
		if attempt > 0 {
			g.retries.Add(1)
		}
		res, err := b.callEstimate(ctx, req)
		if err == nil {
			if attempt > 0 {
				g.failovers.Add(1)
			}
			return res, g.noteServed(sess, req.Matrix, b), nil
		}
		if ctx.Err() != nil {
			return nil, version{}, ctx.Err()
		}
		ok, transportLevel := failoverable(err)
		if !ok {
			return nil, version{}, err
		}
		// A 404 from a replica that should hold the matrix means the
		// backend restarted empty: re-seed it from the retained wire
		// form and retry it once before moving on.
		var apiErr *service.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound && g.repairReplica(ctx, b, req.Matrix) {
			if res, rerr := b.callEstimate(ctx, req); rerr == nil {
				if attempt > 0 {
					g.failovers.Add(1)
				}
				return res, g.noteServed(sess, req.Matrix, b), nil
			}
		}
		b.noteFailover(err, transportLevel)
		lastErr = err
	}
	// Surface a unanimous overload answer as-is: its status and
	// Retry-After tell the client to back off, which a wrapped 502
	// would hide.
	var apiErr *service.APIError
	if errors.As(lastErr, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
		return nil, version{}, lastErr
	}
	return nil, version{}, fmt.Errorf("%w: %q: %v", ErrAllReplicasFailed, req.Matrix, lastErr)
}

// noteServed reads the answering replica's applied version and folds
// it into the session's monotonic-read floor.
func (g *Gateway) noteServed(sess, name string, b *backend) version {
	v := g.appliedVersion(name, b.id)
	g.sessions.noteRead(sess, name, v)
	return v
}

// appliedVersion reads one backend's current applied vector entry.
func (g *Gateway) appliedVersion(name, id string) version {
	st := g.updState(name)
	if st == nil {
		return version{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.applied[id]
}

// slaRoute narrows a query's replica order to the candidates that
// satisfy its SLA:
//
//   - no constraint (eventual; session levels with no history) keeps
//     the full routeOrder — suspects still last;
//   - otherwise the replicas whose applied vector is at or past the
//     required version, in routeOrder (a hit — in sync mode every
//     replica satisfies every level, so this is the whole order);
//   - none satisfying → one in-line catch-up attempt on the least-busy
//     eligible replica (a catchup);
//   - still none → every replica, freshest applied vector first, so
//     the degradation is as small as the fleet allows (a miss).
func (g *Gateway) slaRoute(ctx context.Context, name string, order []*backend, nEligible int, sla SLA, sess string) ([]*backend, slaOutcome) {
	st := g.updState(name)
	if st == nil {
		return order, slaHit
	}
	st.mu.Lock()
	required := g.requiredVersionLocked(st, name, sla, sess)
	vers := make(map[string]version, len(order))
	for _, b := range order {
		vers[b.id] = st.applied[b.id]
	}
	st.mu.Unlock()
	if required == (version{}) {
		return order, slaHit
	}
	var cands []*backend
	for _, b := range order {
		if vers[b.id].AtLeast(required) {
			cands = append(cands, b)
		}
	}
	if len(cands) > 0 {
		return cands, slaHit
	}
	// One in-line catch-up attempt: replay the pending log to the
	// least-busy eligible replica under the commit lock, so a strong or
	// rmw read pays a bounded write-path delay instead of degrading.
	if nEligible > 0 {
		b := order[0]
		st.mu.Lock() //mp:lockio-ok audited: in-line catch-up replay is serialized with writers by holding the per-matrix commit lock — see async.go's ordering discipline
		ok := g.catchUpLocked(ctx, st, name, b) && st.applied[b.id].AtLeast(required)
		st.mu.Unlock()
		if ok {
			return []*backend{b}, slaCatchup
		}
	}
	// Degrade: no replica can satisfy the level right now (the
	// satisfying ones are down, or the catch-up failed). Serve the
	// freshest available state rather than erroring; the miss is
	// visible in the SLA counters and the MP-Version echo.
	if nEligible == 0 {
		return order, slaMiss
	}
	cands = append([]*backend(nil), order[:nEligible]...)
	sort.SliceStable(cands, func(i, j int) bool { return vers[cands[j].id].Less(vers[cands[i].id]) })
	return append(cands, order[nEligible:]...), slaMiss
}

// requiredVersionLocked resolves an SLA to its version floor for one
// matrix — the zero version means unconstrained. Strong requires the
// update-log head, the session levels their recorded floors, bounded
// the staleness cutoff. Callers hold st.mu.
func (g *Gateway) requiredVersionLocked(st *matrixUpd, name string, sla SLA, sess string) version {
	switch sla.Level {
	case ConsStrong:
		return st.head
	case ConsMonotonic, ConsRMW:
		return g.sessions.floor(sess, name, sla.Level)
	case ConsBounded:
		return boundedFloorLocked(st, time.Now().Add(-sla.Bound))
	}
	return version{}
}

// boundedFloorLocked computes the version a bounded:<d> read must
// observe: every update committed at or before the staleness cutoff.
// Entries already trimmed from the log have unknown commit times, so
// the floor is at least logStart — requiring more than strictly
// necessary keeps the bound honest; requiring less would not. Callers
// hold st.mu.
func boundedFloorLocked(st *matrixUpd, cutoff time.Time) version {
	seq := st.logStart
	for _, ent := range st.log {
		if ent.committed.After(cutoff) {
			break
		}
		seq = ent.seq
	}
	return version{epoch: st.head.epoch, seq: seq}
}

// EstimateBatch scatters a batch across the fleet — each query is
// assigned to the least-loaded routable replica of its matrix, the
// per-backend sub-batches run concurrently through the backends'
// single-admission batch endpoint — and gathers the items back in
// request order. A sub-batch whose call fails is retried query by
// query through Estimate's failover path, so one dying backend costs
// latency, not answers. Queries naming unplaced matrices fail in their
// item, matching the single-backend batch semantics.
func (g *Gateway) EstimateBatch(ctx context.Context, reqs []service.Request) ([]service.BatchItem, error) {
	return g.estimateBatchSLA(ctx, reqs, SLA{}, "")
}

// estimateBatchSLA is EstimateBatch under a consistency SLA: queries
// whose SLA at least one routable replica already satisfies scatter as
// usual (restricted to the satisfying replicas); the rest detour
// through the single-query path, whose in-line catch-up and
// degrade-to-freshest semantics apply per query.
func (g *Gateway) estimateBatchSLA(ctx context.Context, reqs []service.Request, sla SLA, sess string) ([]service.BatchItem, error) {
	if g.isClosed() {
		return nil, ErrClosed
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", service.ErrBadRequest)
	}
	g.batches.Add(1)

	// Assign each query to a backend: among its matrix's routable
	// replicas, minimize in-flight load plus what this batch has
	// already assigned, so a batch spreads across replicas instead of
	// dog-piling the currently-idlest one.
	items := make([]service.BatchItem, len(reqs))
	assigned := make(map[*backend][]int) // backend → query indices
	localLoad := make(map[*backend]int64)
	var detours []int // queries re-routed through the single-query path
	for i, req := range reqs {
		_, reps, err := g.replicaSnapshot(req.Matrix)
		if err != nil {
			items[i] = service.BatchItem{Error: err.Error()}
			continue
		}
		order, nEligible := routeOrder(reps)
		if len(order) == 0 {
			items[i] = service.BatchItem{Error: fmt.Sprintf("gateway: matrix %q has no routable replica", req.Matrix)}
			continue
		}
		// Balance only across the eligible prefix: an unhealthy replica
		// is idle precisely because it is failing, and winning the
		// least-load contest would send it the whole sub-batch. Suspects
		// are used only when nothing eligible exists (the per-query
		// fallback path then handles their failures).
		pool := order[:nEligible]
		if nEligible == 0 {
			pool = order[:1]
		}
		// Narrow the pool to the replicas satisfying the query's SLA.
		// In sync mode every replica satisfies every level, so this
		// keeps the whole pool; an unsatisfiable query detours through
		// estimateSLA for its catch-up/degrade handling.
		sat, constrained := g.slaFilter(req.Matrix, pool, sla, sess)
		if constrained {
			if len(sat) == 0 {
				detours = append(detours, i)
				continue
			}
			pool = sat
		}
		g.sla.note(sla.Level, slaHit)
		best := pool[0]
		bestLoad := best.inflight.Load() + localLoad[best]
		for _, b := range pool[1:] {
			if l := b.inflight.Load() + localLoad[b]; l < bestLoad {
				best, bestLoad = b, l
			}
		}
		assigned[best] = append(assigned[best], i)
		localLoad[best]++
	}

	var wg sync.WaitGroup
	for b, idxs := range assigned {
		wg.Add(1)
		go func(b *backend, idxs []int) {
			defer wg.Done()
			sub := make([]service.Request, len(idxs))
			for k, i := range idxs {
				sub[k] = reqs[i]
			}
			b.inflight.Add(int64(len(sub)))
			start := time.Now()
			got, err := b.client.EstimateBatch(ctx, sub)
			b.inflight.Add(int64(-len(sub)))
			b.recordResult(time.Since(start), err != nil)
			if err == nil && len(got) == len(idxs) {
				for k, i := range idxs {
					items[i] = got[k]
					if sess != "" && got[k].Error == "" {
						g.sessions.noteRead(sess, sub[k].Matrix, g.appliedVersion(sub[k].Matrix, b.id))
					}
				}
				// A per-item "matrix not found" from a replica that is
				// supposed to hold the matrix means it lost its copy (a
				// restart or an LRU eviction): re-route those queries
				// through the single-query path, which repairs the
				// replica or fails over. Other per-item errors are the
				// query's own fault and pass through.
				for k, i := range idxs {
					if got[k].Error == "" || !strings.Contains(got[k].Error, service.ErrMatrixNotFound.Error()) {
						continue
					}
					g.retries.Add(1)
					if res, _, qerr := g.estimateSLA(ctx, sub[k], sla, sess); qerr == nil {
						items[i] = service.BatchItem{Result: res}
					}
				}
				return
			}
			if ctx.Err() != nil {
				return // the gather below reports the cancellation
			}
			// The sub-batch call failed as a whole (transport error,
			// overload, a closing backend): re-route its queries one by
			// one so the other replicas can absorb them.
			if err != nil {
				if ok, transportLevel := failoverable(err); ok {
					b.noteFailover(err, transportLevel)
				}
			}
			for k, i := range idxs {
				g.retries.Add(1)
				res, _, qerr := g.estimateSLA(ctx, sub[k], sla, sess)
				if qerr != nil {
					items[i] = service.BatchItem{Error: qerr.Error()}
					continue
				}
				items[i] = service.BatchItem{Result: res}
			}
		}(b, idxs)
	}
	// Queries no scattered replica could satisfy run through the
	// single-query path concurrently with the sub-batches: its in-line
	// catch-up or degrade-to-freshest decides each one.
	for _, i := range detours {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, qerr := g.estimateSLA(ctx, reqs[i], sla, sess)
			if qerr != nil {
				items[i] = service.BatchItem{Error: qerr.Error()}
				return
			}
			items[i] = service.BatchItem{Result: res}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return items, nil
}

// slaFilter narrows a scatter pool to the replicas satisfying an SLA
// without any side effects (no catch-up, no counters). constrained is
// false when the SLA imposes no version floor — the pool then stands.
func (g *Gateway) slaFilter(name string, pool []*backend, sla SLA, sess string) (sat []*backend, constrained bool) {
	st := g.updState(name)
	if st == nil {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	required := g.requiredVersionLocked(st, name, sla, sess)
	if required == (version{}) {
		return nil, false
	}
	for _, b := range pool {
		if st.applied[b.id].AtLeast(required) {
			sat = append(sat, b)
		}
	}
	return sat, true
}
