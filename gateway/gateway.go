package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/service"
)

// Gateway errors. The HTTP layer maps them to statuses (see
// writeError in http.go); service errors wrapped by gateway paths keep
// their service-side status mapping.
var (
	// ErrNoBackends is returned when no backend is eligible to take a
	// placement or a query (mapped to 503).
	ErrNoBackends = errors.New("gateway: no eligible backends")
	// ErrAllReplicasFailed is returned when every replica of a matrix
	// failed to answer a query (mapped to 502).
	ErrAllReplicasFailed = errors.New("gateway: all replicas failed")
	// ErrUnknownBackend is returned by admin operations naming a
	// backend that is not in the pool (mapped to 404).
	ErrUnknownBackend = errors.New("gateway: unknown backend")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("gateway: closed")
)

// Config parameterizes a Gateway. Zero values select the defaults.
type Config struct {
	// Backends are the initial backend base URLs (e.g.
	// "http://127.0.0.1:8081"). More can be added at runtime through
	// the admin API.
	Backends []string
	// Replication is the number of backends each matrix is placed on
	// (R). Placements use the top R of the matrix's rendezvous ranking
	// over the eligible backends; fewer than R eligible backends
	// degrade to what is available. Default 2.
	Replication int
	// ProbeInterval is the health prober's base period between probes
	// of a healthy backend. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe call. Default 2s.
	ProbeTimeout time.Duration
	// ProbeBackoffMax caps the exponential backoff between probes of a
	// failing backend (ProbeInterval·2^consecutive-failures, capped
	// here). Default 30s.
	ProbeBackoffMax time.Duration
	// UploadTTL bounds how long an idle fan-out chunked upload may sit
	// staged at the gateway before it is garbage-collected (legs on the
	// backends are aborted best-effort). Default 2 minutes.
	UploadTTL time.Duration
	// HTTPClient is the shared client for backend calls. Default
	// http.DefaultClient.
	HTTPClient *http.Client
	// Store, when set with WireCacheBudget, is the durable spill target
	// for retained wire copies (see spill.go). The gateway owns the
	// store's content and wipes it on New; do not share a data directory
	// with a backend.
	Store store.Store
	// WireCacheBudget caps the bytes of retained wire copies held
	// resident before the largest are spilled to Store. 0 (the default)
	// disables spilling — every copy stays in memory.
	WireCacheBudget int64
}

func (c *Config) setDefaults() {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 30 * time.Second
	}
	if c.UploadTTL <= 0 {
		c.UploadTTL = 2 * time.Minute
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
}

// placedMatrix is one placement-table entry: the catalog info, the
// retained wire form (what rebalancing and replica repair re-upload —
// the gateway is the placement's source of truth, so it keeps the
// bytes), and the backends currently holding the matrix. Entries are
// replaced wholesale (copy-on-write), so a snapshot taken under the
// gateway lock stays consistent after release. needsHeal marks an
// entry whose replica set was shrunk by a row update dropping an
// unreachable backend; the prober's heal pass re-places it from the
// retained wire until it is back at full replication.
type placedMatrix struct {
	info service.MatrixInfo
	wire service.Matrix
	// wireBytes is the copy's budget-accounted resident size (see
	// wireSize); it describes the full wire form even while spilled.
	wireBytes int64
	// spilled marks a copy whose Entries were dropped from memory; the
	// durable form lives in the spill store and wireOf reloads it.
	spilled   bool
	replicas  []string
	needsHeal bool
}

// clone returns a copy for copy-on-write replacement: same wire and
// flags, own replica slice. Callers adjust fields before installing.
func (pm *placedMatrix) clone() *placedMatrix {
	cp := *pm
	cp.replicas = append([]string(nil), pm.replicas...)
	return &cp
}

// Gateway is the multi-backend front tier: it owns a health-checked
// pool of mpserver backends, places matrices across them by rendezvous
// hashing with replication, and routes the service API against the
// placement — estimates to the least-busy healthy replica with
// failover, uploads fanned out to every replica all-or-nothing.
type Gateway struct {
	cfg Config

	// mu guards the pool, placement table, and upload staging maps.
	// Never held across a backend network call: fan-out paths snapshot
	// under mu, call outside it, and re-acquire to commit.
	mu       sync.Mutex
	backends map[string]*backend
	matrices map[string]*placedMatrix
	uploads  map[string]*fanoutUpload

	// topoMu serializes topology changes (admin add/drain/remove and
	// their rebalances, write side) against each other and against
	// placements (PutMatrix and chunked commits, read side): a backend
	// removed mid-placement would otherwise leave a matrix tabled only
	// on an id no longer in the pool, unroutable until the next admin
	// operation. Held across network calls — admin operations are rare
	// and placements may share the read side freely.
	topoMu sync.RWMutex

	// updMu serializes replicated row updates: the retained wire copy
	// must advance through a single line of patched successors.
	updMu sync.Mutex

	upSeq         atomic.Uint64
	estimates     atomic.Int64
	batches       atomic.Int64
	failovers     atomic.Int64
	retries       atomic.Int64
	repairs       atomic.Int64
	placements    atomic.Int64
	rebalanced    atomic.Int64
	lostReplicas  atomic.Int64
	updates       atomic.Int64
	updateReverts atomic.Int64
	resyncs       atomic.Int64
	reseedBytes   atomic.Int64
	spills        atomic.Int64
	spillLoads    atomic.Int64
	spillErrors   atomic.Int64
	spillSeq      atomic.Uint64

	met *gatewayMetrics

	start     time.Time
	closed    chan struct{}
	closeOnce sync.Once
	// baseCtx parents every prober-initiated call (probes, resyncs),
	// so Close can abort them instead of waiting out their timeouts.
	baseCtx    context.Context
	cancelBase context.CancelFunc
	probeWG    sync.WaitGroup
}

// New returns a gateway fronting the configured backends and starts
// its health prober. Close releases it.
func New(cfg Config) *Gateway {
	cfg.setDefaults()
	g := &Gateway{
		cfg:      cfg,
		backends: make(map[string]*backend),
		matrices: make(map[string]*placedMatrix),
		uploads:  make(map[string]*fanoutUpload),
		start:    time.Now(),
		closed:   make(chan struct{}),
	}
	g.baseCtx, g.cancelBase = context.WithCancel(context.Background())
	g.wipeSpillStore()
	g.met = newGatewayMetrics(g)
	for _, addr := range cfg.Backends {
		if addr == "" {
			continue
		}
		b := newBackend(addr, cfg.HTTPClient)
		b.dur = g.met.backendDur.With(addr)
		g.backends[addr] = b
	}
	g.probeWG.Add(1)
	go g.probeLoop()
	return g
}

// Close stops the health prober — aborting any in-flight probe or
// resync — and makes every subsequent operation fail with ErrClosed.
// In-flight client requests finish.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.closed)
		g.cancelBase()
	})
	g.probeWG.Wait()
}

func (g *Gateway) isClosed() bool {
	select {
	case <-g.closed:
		return true
	default:
		return false
	}
}

// backendIDs returns the ids of backends passing keep, sorted for
// deterministic placement. Callers hold g.mu.
func (g *Gateway) backendIDsLocked(keep func(*backend) bool) []string {
	ids := make([]string, 0, len(g.backends))
	for id, b := range g.backends {
		if keep == nil || keep(b) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// placementTargets picks the backends a matrix should live on right
// now: the top Replication of its rendezvous ranking over the
// placeable (healthy, non-draining) backends.
func (g *Gateway) placementTargets(name string) []*backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := placeOn(rankBackends(g.backendIDsLocked((*backend).placeable), name), g.cfg.Replication)
	out := make([]*backend, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.backends[id])
	}
	return out
}

// replicaSnapshot resolves a matrix's current placement to live
// backend handles plus the table entry.
func (g *Gateway) replicaSnapshot(name string) (*placedMatrix, []*backend, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pm, ok := g.matrices[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", service.ErrMatrixNotFound, name)
	}
	reps := make([]*backend, 0, len(pm.replicas))
	for _, id := range pm.replicas {
		if b, ok := g.backends[id]; ok {
			reps = append(reps, b)
		}
	}
	return pm, reps, nil
}

// uploadTo ships a wire matrix to one backend and reconciles any LRU
// evictions the insert caused: a backend whose registry capacity is
// smaller than its share of placements evicts placed matrices on
// upload, and silently keeping the evicted names in the table would
// route queries at copies that no longer exist. The pruned entries
// stay placed on their surviving replicas (an empty replica list makes
// the loss visible as a routing 503, not a lie). Backends should be
// provisioned with -max-matrices above their expected share — the
// LostReplicas stat counts how often that assumption broke.
func (g *Gateway) uploadTo(ctx context.Context, b *backend, name string, m service.Matrix) (service.MatrixInfo, error) {
	rep, err := b.client.UploadMatrixFull(ctx, name, m)
	if err != nil {
		return service.MatrixInfo{}, err
	}
	if len(rep.Evicted) > 0 {
		g.mu.Lock()
		for _, victim := range rep.Evicted {
			pm, ok := g.matrices[victim]
			if !ok {
				continue
			}
			kept := make([]string, 0, len(pm.replicas))
			for _, id := range pm.replicas {
				if id != b.id {
					kept = append(kept, id)
				}
			}
			if len(kept) != len(pm.replicas) {
				npm := pm.clone()
				npm.replicas = kept
				g.matrices[victim] = npm
				g.lostReplicas.Add(1)
			}
		}
		g.mu.Unlock()
	}
	return rep.MatrixInfo, nil
}

// fanout runs op against every backend concurrently and returns the
// per-backend errors (nil entries for successes) plus the first error
// in backend order.
func fanout(backends []*backend, op func(i int, b *backend) error) (errs []error, first error) {
	errs = make([]error, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			errs[i] = op(i, b)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return errs, err
		}
	}
	return errs, nil
}

// PutMatrix validates and places a matrix: it uploads the wire form to
// every target replica concurrently, and on any failure deletes the
// copies that landed (all-or-nothing) and reports the failure. On
// success the placement table records the matrix, its replicas, and
// the retained wire form rebalancing re-uploads from.
func (g *Gateway) PutMatrix(ctx context.Context, name string, m service.Matrix) (PlacementInfo, error) {
	if g.isClosed() {
		return PlacementInfo{}, ErrClosed
	}
	if name == "" {
		return PlacementInfo{}, fmt.Errorf("%w: empty matrix name", service.ErrBadRequest)
	}
	// Shared with other placements, exclusive against admin topology
	// changes: the target set picked here stays in the pool until the
	// table entry is installed.
	g.topoMu.RLock() //mp:lockio-ok audited: shared topology pin held across replica legs so admin changes cannot race a placement install
	defer g.topoMu.RUnlock()
	targets := g.placementTargets(name)
	if len(targets) == 0 {
		return PlacementInfo{}, ErrNoBackends
	}
	infos := make([]service.MatrixInfo, len(targets))
	errs, first := fanout(targets, func(i int, b *backend) error {
		var err error
		infos[i], err = g.uploadTo(ctx, b, name, m)
		return err
	})
	if first != nil {
		// All-or-nothing: tear the successful copies back down so no
		// replica serves a matrix the gateway does not consider placed.
		for i, err := range errs {
			if err == nil {
				delCtx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
				_ = targets[i].client.DeleteMatrix(delCtx, name)
				cancel()
			}
		}
		return PlacementInfo{}, fmt.Errorf("gateway: replicated put of %q failed: %w", name, first)
	}
	ids := make([]string, len(targets))
	for i, b := range targets {
		ids[i] = b.id
	}
	pm := &placedMatrix{info: infos[0], wire: m, wireBytes: wireSize(m), replicas: ids}
	g.mu.Lock()
	g.matrices[name] = pm
	g.mu.Unlock()
	g.placements.Add(1)
	g.maybeSpill()
	return PlacementInfo{MatrixInfo: pm.info, Replicas: ids}, nil
}

// DeleteMatrix removes a matrix from every replica holding it and from
// the placement table. Replica deletions are best-effort (a down
// replica's copy is cleaned up by the straggler sweep when it
// returns); an unknown name is ErrMatrixNotFound.
func (g *Gateway) DeleteMatrix(ctx context.Context, name string) error {
	if g.isClosed() {
		return ErrClosed
	}
	_, reps, err := g.replicaSnapshot(name)
	if err != nil {
		return err
	}
	g.mu.Lock()
	delete(g.matrices, name)
	g.mu.Unlock()
	g.dropSpilled(name)
	_, _ = fanout(reps, func(_ int, b *backend) error {
		return b.client.DeleteMatrix(ctx, name)
	})
	return nil
}

// Matrices lists the placed matrices with their replica sets, sorted
// by name.
func (g *Gateway) Matrices() []PlacementInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]PlacementInfo, 0, len(g.matrices))
	for _, pm := range g.matrices {
		out = append(out, PlacementInfo{MatrixInfo: pm.info, Replicas: pm.replicas})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// failoverable classifies a replica error: transport-level failures
// (no HTTP answer) and answered 404/502/503 warrant trying the next
// replica — the backend is gone, restarting, closing, or has lost the
// replica — while any other answered error is the query's own fault
// and is returned to the client as-is.
func failoverable(err error) (ok, transportLevel bool) {
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusNotFound, http.StatusBadGateway, http.StatusServiceUnavailable:
			return true, false
		}
		return false, false
	}
	return true, true
}

// routeOrder orders a matrix's replicas for one query: eligible
// (healthy, non-draining) replicas first, least busy first, then
// ineligible non-draining replicas as a last resort — a probe can lag
// a recovery, and a request that would otherwise fail outright is
// worth one try against a suspect replica. nEligible is how many of
// the returned backends are in the eligible prefix; load-balancing
// decisions must confine themselves to it so an idle-because-dead
// suspect never outbids a busy healthy replica.
func routeOrder(reps []*backend) (order []*backend, nEligible int) {
	var suspect []*backend
	for _, b := range reps {
		healthy, draining := b.routeState()
		switch {
		case healthy && !draining:
			order = append(order, b)
		case !draining:
			suspect = append(suspect, b)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].inflight.Load() < order[j].inflight.Load()
	})
	nEligible = len(order)
	return append(order, suspect...), nEligible
}

// callEstimate runs one query against one backend, maintaining its
// in-flight gauge and counters.
func (b *backend) callEstimate(ctx context.Context, req service.Request) (*service.Result, error) {
	b.inflight.Add(1)
	start := time.Now()
	res, err := b.client.Estimate(ctx, req)
	b.inflight.Add(-1)
	b.recordResult(time.Since(start), err != nil)
	return res, err
}

// repairReplica re-uploads a placed matrix to a replica that answered
// 404 for it — the backend restarted (losing its in-memory registry)
// between the prober's resync passes. Returns true when the replica
// holds the matrix again.
func (g *Gateway) repairReplica(ctx context.Context, b *backend, name string) bool {
	g.mu.Lock()
	pm, ok := g.matrices[name]
	g.mu.Unlock()
	if !ok {
		return false
	}
	wire, err := g.wireOf(pm)
	if err != nil {
		return false
	}
	if _, err := g.uploadTo(ctx, b, name, wire); err != nil {
		return false
	}
	g.repairs.Add(1)
	return true
}

// Estimate routes one query to the least-busy healthy replica of its
// matrix, failing over to the next replica on transport errors (and on
// answered 404/502/503 — see failoverable). A replica that lost the
// matrix to a restart is repaired in line from the gateway's retained
// copy and retried. Answered client errors (bad parameters and the
// like) are returned without failover.
func (g *Gateway) Estimate(ctx context.Context, req service.Request) (*service.Result, error) {
	if g.isClosed() {
		return nil, ErrClosed
	}
	g.estimates.Add(1)
	_, reps, err := g.replicaSnapshot(req.Matrix)
	if err != nil {
		return nil, err
	}
	order, _ := routeOrder(reps)
	if len(order) == 0 {
		return nil, fmt.Errorf("%w: matrix %q has no routable replica", ErrNoBackends, req.Matrix)
	}
	var lastErr error
	for attempt, b := range order {
		if attempt > 0 {
			g.retries.Add(1)
		}
		res, err := b.callEstimate(ctx, req)
		if err == nil {
			if attempt > 0 {
				g.failovers.Add(1)
			}
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		ok, transportLevel := failoverable(err)
		if !ok {
			return nil, err
		}
		// A 404 from a replica that should hold the matrix means the
		// backend restarted empty: re-seed it from the retained wire
		// form and retry it once before moving on.
		var apiErr *service.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound && g.repairReplica(ctx, b, req.Matrix) {
			if res, rerr := b.callEstimate(ctx, req); rerr == nil {
				if attempt > 0 {
					g.failovers.Add(1)
				}
				return res, nil
			}
		}
		b.noteFailover(err, transportLevel)
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %q: %v", ErrAllReplicasFailed, req.Matrix, lastErr)
}

// EstimateBatch scatters a batch across the fleet — each query is
// assigned to the least-loaded routable replica of its matrix, the
// per-backend sub-batches run concurrently through the backends'
// single-admission batch endpoint — and gathers the items back in
// request order. A sub-batch whose call fails is retried query by
// query through Estimate's failover path, so one dying backend costs
// latency, not answers. Queries naming unplaced matrices fail in their
// item, matching the single-backend batch semantics.
func (g *Gateway) EstimateBatch(ctx context.Context, reqs []service.Request) ([]service.BatchItem, error) {
	if g.isClosed() {
		return nil, ErrClosed
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", service.ErrBadRequest)
	}
	g.batches.Add(1)

	// Assign each query to a backend: among its matrix's routable
	// replicas, minimize in-flight load plus what this batch has
	// already assigned, so a batch spreads across replicas instead of
	// dog-piling the currently-idlest one.
	items := make([]service.BatchItem, len(reqs))
	assigned := make(map[*backend][]int) // backend → query indices
	localLoad := make(map[*backend]int64)
	for i, req := range reqs {
		_, reps, err := g.replicaSnapshot(req.Matrix)
		if err != nil {
			items[i] = service.BatchItem{Error: err.Error()}
			continue
		}
		order, nEligible := routeOrder(reps)
		if len(order) == 0 {
			items[i] = service.BatchItem{Error: fmt.Sprintf("gateway: matrix %q has no routable replica", req.Matrix)}
			continue
		}
		// Balance only across the eligible prefix: an unhealthy replica
		// is idle precisely because it is failing, and winning the
		// least-load contest would send it the whole sub-batch. Suspects
		// are used only when nothing eligible exists (the per-query
		// fallback path then handles their failures).
		pool := order[:nEligible]
		if nEligible == 0 {
			pool = order[:1]
		}
		best := pool[0]
		bestLoad := best.inflight.Load() + localLoad[best]
		for _, b := range pool[1:] {
			if l := b.inflight.Load() + localLoad[b]; l < bestLoad {
				best, bestLoad = b, l
			}
		}
		assigned[best] = append(assigned[best], i)
		localLoad[best]++
	}

	var wg sync.WaitGroup
	for b, idxs := range assigned {
		wg.Add(1)
		go func(b *backend, idxs []int) {
			defer wg.Done()
			sub := make([]service.Request, len(idxs))
			for k, i := range idxs {
				sub[k] = reqs[i]
			}
			b.inflight.Add(int64(len(sub)))
			start := time.Now()
			got, err := b.client.EstimateBatch(ctx, sub)
			b.inflight.Add(int64(-len(sub)))
			b.recordResult(time.Since(start), err != nil)
			if err == nil && len(got) == len(idxs) {
				for k, i := range idxs {
					items[i] = got[k]
				}
				// A per-item "matrix not found" from a replica that is
				// supposed to hold the matrix means it lost its copy (a
				// restart or an LRU eviction): re-route those queries
				// through the single-query path, which repairs the
				// replica or fails over. Other per-item errors are the
				// query's own fault and pass through.
				for k, i := range idxs {
					if got[k].Error == "" || !strings.Contains(got[k].Error, service.ErrMatrixNotFound.Error()) {
						continue
					}
					g.retries.Add(1)
					if res, qerr := g.Estimate(ctx, sub[k]); qerr == nil {
						items[i] = service.BatchItem{Result: res}
					}
				}
				return
			}
			if ctx.Err() != nil {
				return // the gather below reports the cancellation
			}
			// The sub-batch call failed as a whole (transport error,
			// overload, a closing backend): re-route its queries one by
			// one so the other replicas can absorb them.
			if err != nil {
				if ok, transportLevel := failoverable(err); ok {
					b.noteFailover(err, transportLevel)
				}
			}
			for k, i := range idxs {
				g.retries.Add(1)
				res, qerr := g.Estimate(ctx, sub[k])
				if qerr != nil {
					items[i] = service.BatchItem{Error: qerr.Error()}
					continue
				}
				items[i] = service.BatchItem{Result: res}
			}
		}(b, idxs)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return items, nil
}
