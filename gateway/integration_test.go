package gateway

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/service"
)

// TestIntegrationUpdatesEstimatesKills is the end-to-end dynamic-
// workload scenario: an in-process gateway over three real backends
// (R = 2) absorbs concurrent row updates and estimates while backends
// are killed and restarted underneath it. The bar is the production
// one — zero client-visible errors (kills cost failovers and repairs,
// never answers) — and, after the churn quiesces, a converged fleet:
// the placement is back at full replication and every replica answers
// exactly the value implied by the gateway's retained (patched) wire
// copy.
func TestIntegrationUpdatesEstimatesKills(t *testing.T) {
	const n = 10
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	backends := []*testBackend{b1, b2, b3}
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	g := newTestGateway(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, _ := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	errCh := make(chan error, 64)
	var wg sync.WaitGroup

	// Updaters: random single-row replacements with non-negative
	// values, so "exact" stays valid throughout.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				row := rnd.Intn(n)
				entries := [][2]int64{{int64(rnd.Intn(n)), rnd.Int63n(3) + 1}}
				if _, err := g.UpdateRows(ctx, "m", replaceRowReq(row, entries)); err != nil {
					errCh <- fmt.Errorf("updater %d iteration %d: %w", w, i, err)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(w)
	}

	// Estimators: the exact kind against an identity Alice; any error
	// is client-visible and fails the test.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if _, err := g.Estimate(ctx, exactReq("m", n)); err != nil {
					errCh <- fmt.Errorf("estimator %d iteration %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	// Killer: three kill/restart cycles, one backend at a time, waiting
	// for the fleet to converge back to full replication between cycles
	// so the pool never loses two replicas of the same matrix at once —
	// the invariant that makes zero client-visible errors achievable.
	fullyReplicated := func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		pm, ok := g.matrices["m"]
		return ok && len(pm.replicas) == 2 && !pm.needsHeal
	}
	for cycle := 0; cycle < 3; cycle++ {
		victim := backends[cycle%len(backends)]
		victim.stop()
		time.Sleep(80 * time.Millisecond)
		victim.restart()
		waitFor(t, "victim re-admitted", func() bool {
			st, ok := backendStatus(g, victim.addr)
			return ok && st.Healthy
		})
		waitFor(t, "full replication restored", fullyReplicated)
	}
	close(done)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	waitFor(t, "final convergence", fullyReplicated)

	g.mu.Lock()
	pm := g.matrices["m"]
	g.mu.Unlock()
	want := wireSum(pm.wire)
	for _, addr := range pm.replicas {
		tb := byAddr[addr]
		waitFor(t, "replica "+addr+" holds m", func() bool { return tb.holds("m") })
		res, err := service.NewClient(addr).Estimate(ctx, exactReq("m", n))
		if err != nil {
			t.Fatalf("replica %s after churn: %v", addr, err)
		}
		if res.Estimate != want {
			t.Errorf("replica %s diverged: answers %v, retained wire implies %v", addr, res.Estimate, want)
		}
	}
	if res, err := g.Estimate(ctx, exactReq("m", n)); err != nil || res.Estimate != want {
		t.Errorf("gateway after churn: %v/%v, want %v", res, err, want)
	}

	st := g.Stats()
	t.Logf("churn stats: updates=%d reverts=%d failovers=%d retries=%d repairs=%d lost=%d",
		st.Updates, st.UpdateReverts, st.Failovers, st.Retries, st.Repairs, st.LostReplicas)
	if st.Updates == 0 || st.Estimates == 0 {
		t.Error("churn did not exercise the update/estimate paths")
	}
}
