package gateway

import (
	"errors"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/service"
)

// backendLatencyWindow is how many recent per-backend request
// latencies the percentile estimates are computed over.
const backendLatencyWindow = 1024

// backend is one pooled mpserver: its service client, routing state
// (health, drain, in-flight load), probe bookkeeping, and counters.
type backend struct {
	id     string // normalized base URL; the pool key and admin handle
	client *service.Client
	// dur is the backend's pre-resolved request-duration histogram
	// handle (nil only in tests constructing backends directly).
	dur *metrics.Histogram

	// inflight counts requests currently outstanding against the
	// backend — the least-busy routing signal. Atomic so the hot
	// routing path never takes the bookkeeping lock.
	inflight atomic.Int64

	mu       sync.Mutex
	healthy  bool
	draining bool
	probing  bool // a probe is in flight; the ticker must not stack another
	// consecFails counts consecutive probe failures; the prober's
	// exponential backoff derives from it.
	consecFails int
	// demotions counts transport-level health demotions (noteFailover).
	// The prober snapshots it before a probe and refuses to re-admit if
	// it moved — a success observed before a crash must not win.
	demotions int64
	// nextProbe is when the prober may contact the backend again.
	nextProbe time.Time
	lastErr   string
	// saturatedUntil is set when the backend sheds with 429 + a
	// Retry-After: routing treats it like unhealthy until the window
	// elapses, without a probe-cycle demotion (the backend is alive,
	// just full).
	saturatedUntil time.Time

	// jfrac is the backend's deterministic probe-backoff jitter
	// fraction in [0, 1), derived from the backend key at construction
	// (see newBackend) — no RNG, keeping mpvet's determinism contract.
	jfrac float64

	requests  int64
	errors    int64
	failovers int64 // requests that failed over away from this backend
	ring      [backendLatencyWindow]time.Duration
	ringN     int
}

func newBackend(id string, httpc *http.Client) *backend {
	// The backend hop speaks the binary wire format for the hot
	// endpoints — estimates, row updates, and the repair/re-seed
	// uploads of retained wire copies — with the client's sticky 415
	// fallback covering JSON-only backends. Legacy unprefixed paths
	// keep the hop compatible with every pooled server generation.
	c := service.New(id,
		service.WithPathPrefix(""),
		service.WithAccept(service.MediaTypeBinary),
		service.WithHTTPClient(httpc))
	// A new backend is admitted optimistically: the prober demotes it
	// on its first failed probe, and routing failover covers the gap.
	// The probe-backoff jitter fraction reuses the placement hash as a
	// deterministic per-key uniform source: the top 53 bits of the
	// keyed score form a float in [0, 1).
	jfrac := float64(placementScore(id, "probe-jitter")>>11) / (1 << 53)
	return &backend{id: id, client: c, healthy: true, jfrac: jfrac}
}

// recordResult folds one request outcome into the backend's counters
// and, for successes, the exported latency histogram.
//
//mp:hotpath
func (b *backend) recordResult(lat time.Duration, failed bool) {
	b.mu.Lock() //mp:lock-ok audited allowed set: O(1) counter fold + ring write, never blocks on I/O
	b.requests++
	if failed {
		b.errors++
		b.mu.Unlock()
		return
	}
	b.ring[b.ringN%backendLatencyWindow] = lat
	b.ringN++
	b.mu.Unlock()
	if b.dur != nil {
		b.dur.Observe(lat.Seconds())
	}
}

// noteFailover records that a request failed over away from this
// backend. Transport-level failures also demote it to unhealthy
// immediately — routing then skips it until the prober re-admits it —
// while an answered error (an APIError) leaves health alone: the
// backend is alive, it just could not serve this request. One answered
// error is special-cased: a 429 shed marks the backend saturated for
// its Retry-After window (1s when the header is absent), so failover
// and the apply loop stop hammering a full admission queue without
// paying a probe-cycle demotion.
func (b *backend) noteFailover(err error, transportLevel bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failovers++
	if transportLevel {
		b.healthy = false
		b.demotions++
		b.lastErr = err.Error()
		return
	}
	var apiErr *service.APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
		wait := apiErr.RetryAfter
		if wait <= 0 {
			wait = time.Second
		}
		b.saturatedUntil = time.Now().Add(wait)
		b.lastErr = err.Error()
	}
}

// eligible reports whether routing may send new work to the backend.
func (b *backend) eligible() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy && !b.draining && !time.Now().Before(b.saturatedUntil)
}

// routeState snapshots the routing-relevant flags under the lock (a
// bare field read would race the admin paths writing them). A backend
// inside its 429 Retry-After window reads as unhealthy.
func (b *backend) routeState() (healthy, draining bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy && !time.Now().Before(b.saturatedUntil), b.draining
}

// placeable reports whether new matrix placements may target the
// backend (same condition as routing eligibility; kept separate so the
// two policies can diverge without touching call sites).
func (b *backend) placeable() bool { return b.eligible() }

// status snapshots the backend for Stats and the admin listing.
func (b *backend) status(placements int) BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BackendStatus{
		Addr:        b.id,
		Healthy:     b.healthy,
		Draining:    b.draining,
		Inflight:    b.inflight.Load(),
		Requests:    b.requests,
		Errors:      b.errors,
		Failovers:   b.failovers,
		Matrices:    placements,
		ConsecFails: b.consecFails,
		LastError:   b.lastErr,
	}
	n := b.ringN
	if n > backendLatencyWindow {
		n = backendLatencyWindow
	}
	if n > 0 {
		lats := make([]time.Duration, n)
		copy(lats, b.ring[:n])
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.LatencyP50 = service.Percentile(lats, 0.50)
		st.LatencyP90 = service.Percentile(lats, 0.90)
		st.LatencyP99 = service.Percentile(lats, 0.99)
	}
	return st
}
