package gateway

import (
	"context"
	"net/http"

	"repro/service"
)

// Client is the typed counterpart of the gateway's HTTP API. The
// embedded service.Client covers the mirrored front routes (uploads,
// estimates, batches) — a gateway is a drop-in service endpoint — and
// the methods here cover what only a gateway serves: its aggregate
// stats and the backend-pool admin surface. All construction options
// (WithTimeout, WithAccept, WithRetry, …) live on the embedded
// service.Client, so the two clients share one configuration surface.
type Client struct {
	*service.Client
}

// Dial returns a client for the given gateway root, addressing the
// versioned /v1 surface by default; service.ClientOption values apply
// to every call, front and admin alike.
func Dial(baseURL string, opts ...service.ClientOption) *Client {
	return &Client{Client: service.New(baseURL, opts...)}
}

// NewClient returns a JSON client for the given gateway root against
// the legacy unprefixed paths.
//
// Deprecated: use Dial, which defaults to the versioned /v1 surface
// and takes the shared service.ClientOption options.
func NewClient(baseURL string) *Client {
	return Dial(baseURL, service.WithPathPrefix(""))
}

// GatewayStats fetches the gateway's aggregate and per-backend
// counters. (The embedded Stats method decodes a backend engine's
// stats shape; a gateway's /stats is this one.)
func (c *Client) GatewayStats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.Do(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Backends lists the gateway's backend pool with health and counters.
func (c *Client) Backends(ctx context.Context) ([]BackendStatus, error) {
	var out []BackendStatus
	err := c.Do(ctx, http.MethodGet, "/admin/backends", nil, &out)
	return out, err
}

// AddBackend registers a backend (or un-drains an existing one) and
// rebalances placements onto it.
func (c *Client) AddBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	return c.admin(ctx, "add", addr)
}

// DrainBackend marks a backend draining and rebalances its placements
// away.
func (c *Client) DrainBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	return c.admin(ctx, "drain", addr)
}

// RemoveBackend drops a backend from the pool after rebalancing its
// placements away.
func (c *Client) RemoveBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	return c.admin(ctx, "remove", addr)
}

func (c *Client) admin(ctx context.Context, op, addr string) (RebalanceReport, error) {
	var out RebalanceReport
	err := c.Do(ctx, http.MethodPost, "/admin/backends", AdminRequest{Op: op, Addr: addr}, &out)
	return out, err
}
