package gateway

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/service"
)

// startGatewayServer serves a gateway over real HTTP and returns its
// typed client — the full stack a fleet deployment runs.
func startGatewayServer(t *testing.T, r int, addrs ...string) (*Gateway, *Client) {
	t.Helper()
	g := newTestGateway(t, r, addrs...)
	srv := httptest.NewServer(NewHandler(g))
	t.Cleanup(srv.Close)
	return g, NewClient(srv.URL)
}

func TestHTTPFrontMirrorsServiceAPI(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	_, gc := startGatewayServer(t, 2, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	// The embedded service.Client drives the gateway unchanged: the
	// front tier is a drop-in service endpoint.
	info, err := gc.UploadMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatalf("upload via client: %v", err)
	}
	if info.Name != "m" || info.NNZ != len(wire.Entries) {
		t.Fatalf("upload info: %+v", info)
	}
	listed, err := gc.Matrices(ctx)
	if err != nil || len(listed) != 1 || listed[0].Name != "m" {
		t.Fatalf("matrices: %v err=%v", listed, err)
	}
	res, err := gc.Estimate(ctx, exactReq("m", n))
	if err != nil || res.Estimate != sum {
		t.Fatalf("estimate via client: res=%v err=%v", res, err)
	}
	items, err := gc.EstimateBatch(ctx, []service.Request{exactReq("m", n), exactReq("m", n)})
	if err != nil || len(items) != 2 || items[0].Result.Estimate != sum {
		t.Fatalf("batch via client: items=%v err=%v", items, err)
	}
	if err := gc.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	// Chunked upload through the generic client helper.
	if _, err := gc.UploadMatrixChunked(ctx, "big", wire, 3); err != nil {
		t.Fatalf("chunked upload via client: %v", err)
	}
	if res, err := gc.Estimate(ctx, exactReq("big", n)); err != nil || res.Estimate != sum {
		t.Fatalf("estimate of chunked upload: res=%v err=%v", res, err)
	}
	if err := gc.DeleteMatrix(ctx, "big"); err != nil {
		t.Fatalf("delete via client: %v", err)
	}
	// Chunk lifecycle steps individually (begin/append/abort).
	up, err := gc.BeginUpload(ctx, "c", n, n)
	if err != nil {
		t.Fatalf("begin via client: %v", err)
	}
	if _, err := gc.AppendChunk(ctx, "c", up.Upload, 0, n, wire.Entries); err != nil {
		t.Fatalf("append via client: %v", err)
	}
	if err := gc.AbortUpload(ctx, "c", up.Upload); err != nil {
		t.Fatalf("abort via client: %v", err)
	}
	up2, err := gc.BeginUpload(ctx, "c2", n, n)
	if err != nil {
		t.Fatalf("begin2 via client: %v", err)
	}
	if _, err := gc.AppendChunk(ctx, "c2", up2.Upload, 0, n, wire.Entries); err != nil {
		t.Fatalf("append2 via client: %v", err)
	}
	if _, err := gc.CommitUpload(ctx, "c2", up2.Upload); err != nil {
		t.Fatalf("commit via client: %v", err)
	}
	if res, err := gc.Estimate(ctx, exactReq("c2", n)); err != nil || res.Estimate != sum {
		t.Fatalf("estimate of committed chunk upload: res=%v err=%v", res, err)
	}
}

func TestHTTPAdminAndStats(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	_, gc := startGatewayServer(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	for _, name := range []string{"m0", "m1", "m2"} {
		if _, err := gc.UploadMatrix(ctx, name, wire); err != nil {
			t.Fatalf("upload %s: %v", name, err)
		}
	}
	backends, err := gc.Backends(ctx)
	if err != nil || len(backends) != 2 {
		t.Fatalf("backends: %v err=%v", backends, err)
	}
	b3 := startBackend(t)
	rep, err := gc.AddBackend(ctx, b3.addr)
	if err != nil || rep.Action != "add" || rep.Backend != b3.addr {
		t.Fatalf("add via client: %+v err=%v", rep, err)
	}
	if backends, _ = gc.Backends(ctx); len(backends) != 3 {
		t.Fatalf("pool after add: %v", backends)
	}
	rep, err = gc.DrainBackend(ctx, b1.addr)
	if err != nil || rep.Action != "drain" {
		t.Fatalf("drain via client: %+v err=%v", rep, err)
	}
	st, err := gc.GatewayStats(ctx)
	if err != nil {
		t.Fatalf("gateway stats: %v", err)
	}
	if st.Replication != 2 || st.Matrices != 3 || len(st.Backends) != 3 {
		t.Fatalf("stats: %+v", st)
	}
	for _, name := range []string{"m0", "m1", "m2"} {
		if res, err := gc.Estimate(ctx, exactReq(name, n)); err != nil || res.Estimate != sum {
			t.Fatalf("estimate %s after admin churn: res=%v err=%v", name, res, err)
		}
	}
	if rep, err = gc.RemoveBackend(ctx, b1.addr); err != nil || rep.Action != "remove" {
		t.Fatalf("remove via client: %+v err=%v", rep, err)
	}
	if backends, _ = gc.Backends(ctx); len(backends) != 2 {
		t.Fatalf("pool after remove: %v", backends)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	n := 4
	b1 := startBackend(t)
	_, gc := startGatewayServer(t, 1, b1.addr)
	ctx := context.Background()

	assertStatus := func(err error, status int, what string) {
		t.Helper()
		var apiErr *service.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != status {
			t.Fatalf("%s: got %v, want HTTP %d", what, err, status)
		}
	}
	// Unknown matrix → 404 from the gateway's own placement check.
	_, err := gc.Estimate(ctx, exactReq("ghost", n))
	assertStatus(err, http.StatusNotFound, "estimate of unplaced matrix")
	// A backend's answered client error passes through with its status.
	if _, err := gc.UploadMatrix(ctx, "m", identWire(n)); err != nil {
		t.Fatalf("upload: %v", err)
	}
	badReq := exactReq("m", n)
	badReq.Kind = "no-such-kind"
	_, err = gc.Estimate(ctx, badReq)
	assertStatus(err, http.StatusBadRequest, "unknown kind")
	// Admin errors.
	_, err = gc.DrainBackend(ctx, "http://nope:1")
	assertStatus(err, http.StatusNotFound, "drain unknown backend")
	err = gc.DoJSON(ctx, http.MethodPost, "/admin/backends", AdminRequest{Op: "explode", Addr: "x"}, nil)
	assertStatus(err, http.StatusBadRequest, "unknown admin op")
	_, err = gc.AddBackend(ctx, "")
	assertStatus(err, http.StatusBadRequest, "add empty addr")
	// Malformed JSON body → 400.
	resp, herr := http.Post(gc.BaseURL+"/estimate", "application/json", strings.NewReader("{nope"))
	if herr != nil {
		t.Fatal(herr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d", resp.StatusCode)
	}
	// Unknown chunk op → 400.
	err = gc.DoJSON(ctx, http.MethodPost, "/matrices/m/chunks", service.ChunkRequest{Op: "explode"}, nil)
	assertStatus(err, http.StatusBadRequest, "unknown chunk op")
	// Empty matrix name via the chunks begin path → 400 comes from the
	// gateway before any backend is contacted.
	if _, err := gc.Client.UploadMatrix(ctx, "", identWire(n)); err == nil {
		t.Fatal("empty-name upload accepted")
	}
}

func TestHTTPNoBackends(t *testing.T) {
	g := newTestGateway(t, 2) // empty pool: everything placement-shaped is 503
	srv := httptest.NewServer(NewHandler(g))
	t.Cleanup(srv.Close)
	gc := NewClient(srv.URL)
	ctx := context.Background()

	_, err := gc.UploadMatrix(ctx, "m", identWire(4))
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("put with no backends: %v, want 503", err)
	}
	if _, err := gc.BeginUpload(ctx, "m", 4, 4); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("begin with no backends: %v, want 503", err)
	}
}

func TestHTTPAllReplicasFailed(t *testing.T) {
	n := 4
	b1 := startBackend(t)
	_, gc := startGatewayServer(t, 1, b1.addr)
	ctx := context.Background()
	if _, err := gc.UploadMatrix(ctx, "m", identWire(n)); err != nil {
		t.Fatalf("upload: %v", err)
	}
	b1.stop()
	_, err := gc.Estimate(ctx, exactReq("m", n))
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("estimate with every replica dead: %v, want 502", err)
	}
}

func TestGatewayClosed(t *testing.T) {
	b1 := startBackend(t)
	g := newTestGateway(t, 1, b1.addr)
	g.Close()
	ctx := context.Background()
	if _, err := g.PutMatrix(ctx, "m", identWire(4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := g.Estimate(ctx, exactReq("m", 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("estimate after close: %v", err)
	}
	if _, err := g.EstimateBatch(ctx, []service.Request{exactReq("m", 4)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close: %v", err)
	}
	if _, err := g.AddBackend(ctx, "http://x:1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("admin after close: %v", err)
	}
	g.Close() // idempotent
}
