package gateway

import (
	"context"
	"fmt"
	"time"

	"repro/service"
)

// healUploadTimeout bounds one heal-pass re-seed upload. healOne holds
// the topology lock and the matrix's commit lock across it, so this —
// not the resync's 30s budget — is what a dead target can stall
// placements (and that matrix's updates) for.
const healUploadTimeout = 10 * time.Second

// probeLoop is the health prober: every ProbeInterval tick it probes
// each backend whose backoff window has elapsed, one goroutine per
// backend — a slow probe or resync of one backend must not delay the
// others' probes. Each probe goroutine is tracked by probeWG (Close
// waits for it, after cancelling its context through baseCtx), and a
// per-backend in-flight flag keeps ticks from stacking probes on a
// slow backend. A failing backend is demoted to unhealthy and probed
// on an exponential backoff (ProbeInterval·2^failures, capped at
// ProbeBackoffMax); a succeeding one is resynced (see resyncBackend)
// and re-admitted.
func (g *Gateway) probeLoop() {
	defer g.probeWG.Done()
	tick := time.NewTicker(g.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-g.closed:
			return
		case now := <-tick.C:
			g.mu.Lock()
			due := make([]*backend, 0, len(g.backends))
			for _, b := range g.backends {
				b.mu.Lock()
				if !b.probing && !now.Before(b.nextProbe) {
					b.probing = true
					due = append(due, b)
				}
				b.mu.Unlock()
			}
			g.mu.Unlock()
			for _, b := range due {
				g.probeWG.Add(1)
				go func(b *backend) {
					defer g.probeWG.Done()
					g.probeBackend(b)
					b.mu.Lock()
					b.probing = false
					b.mu.Unlock()
				}(b)
			}
		}
	}
}

// probeBackend pings one backend's stats endpoint and updates its
// health state. An unhealthy backend that answers is resynced —
// re-seeded with every matrix placed on it that it no longer holds —
// before it is re-admitted, so a restarted (empty) backend returns to
// rotation already serving its share.
func (g *Gateway) probeBackend(b *backend) {
	b.mu.Lock()
	demotionsBefore := b.demotions
	b.mu.Unlock()
	ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ProbeTimeout)
	_, err := b.client.Stats(ctx)
	cancel()
	now := time.Now()
	b.mu.Lock()
	wasHealthy := b.healthy
	if err != nil {
		b.healthy = false
		b.consecFails++
		b.lastErr = err.Error()
		backoff := g.cfg.ProbeInterval << min(b.consecFails, 16)
		if backoff > g.cfg.ProbeBackoffMax || backoff <= 0 {
			backoff = g.cfg.ProbeBackoffMax
		}
		// Deterministic per-backend jitter (±25%, seeded from the
		// backend key — see newBackend) de-correlates the re-probe
		// schedules of backends that failed together: a fleet-wide blip
		// would otherwise put every backend on the same
		// ProbeInterval·2^fails schedule, and their recovery probes —
		// each followed by a resync re-seeding every placed matrix —
		// would land as a thundering herd.
		backoff = time.Duration(float64(backoff) * (0.75 + 0.5*b.jfrac))
		b.nextProbe = now.Add(backoff)
		b.mu.Unlock()
		return
	}
	b.consecFails = 0
	b.nextProbe = now.Add(g.cfg.ProbeInterval)
	b.mu.Unlock()
	if !wasHealthy {
		g.resyncBackend(b)
	}
	b.mu.Lock()
	// Re-admit only if no transport failure demoted the backend while
	// the probe (and possibly a long resync) was in flight: the
	// success observed before a crash must not overwrite the fresher
	// demotion. The next tick re-probes.
	if b.demotions == demotionsBefore {
		b.healthy = true
		b.lastErr = ""
	}
	b.mu.Unlock()
	g.healUnderReplication()
}

// healUnderReplication is the post-repair resync's second half: a
// replicated row update drops unreachable replicas from a placement
// (their stale copies are straggler-deleted when the backend returns),
// flagging the entry. Every successful probe runs this pass, which
// re-places flagged matrices on their missing rendezvous targets from
// the retained wire — which UpdateRows keeps patched, so a restored
// replica holds the post-update matrix. The flag clears once the
// entry's full target set holds a copy; entries shrunk by backend-side
// LRU evictions are deliberately not flagged (re-placing them would
// just evict something else on an underprovisioned backend).
func (g *Gateway) healUnderReplication() {
	g.mu.Lock()
	var names []string
	for name, pm := range g.matrices {
		if pm.needsHeal {
			names = append(names, name)
		}
	}
	g.mu.Unlock()
	if len(names) == 0 {
		return
	}
	for _, name := range names {
		g.healOne(name)
	}
}

// healOne re-places one flagged matrix. It holds the matrix's commit
// lock (st.mu) for the duration — a heal re-seeds the retained wire as
// of its snapshot, so letting an update commit a newer wire mid-heal
// would leave the healed replica one patch behind without anyone
// knowing — and the topology lock *exclusively*: under a shared lock a
// concurrent PutMatrix could fan out its replacement while this
// heal's stale upload is in flight, and whichever lands second at a
// backend would win there, leaving that replica's content diverged
// from the table with nothing to detect it (resync checks presence by
// name only). The cost is that placements (and updates of this one
// matrix) wait out a heal; uploads are bounded by healUploadTimeout
// per missing target, so a dead backend stalls the write path for
// seconds, not the probe loop's lifetime. Lock order is topoMu before
// st.mu, matching rebalance's reseed stamps.
func (g *Gateway) healOne(name string) {
	g.topoMu.Lock()
	defer g.topoMu.Unlock()
	st := g.updState(name)
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	g.mu.Lock()
	pm, ok := g.matrices[name]
	placeable := g.backendIDsLocked((*backend).placeable)
	g.mu.Unlock()
	if !ok || !pm.needsHeal {
		return
	}
	wire, werr := g.wireOf(pm)
	if werr != nil {
		return // spilled copy unreadable; keep the flag for the next probe
	}
	targets := placeOn(rankBackends(placeable, name), g.cfg.Replication)
	have := make(map[string]bool, len(pm.replicas))
	for _, id := range pm.replicas {
		have[id] = true
	}
	kept := append([]string(nil), pm.replicas...)
	// Healed only once R placeable targets all hold a copy: with the
	// pool degraded below R the flag stays set, so the pass resumes
	// when the missing backends return.
	healed := len(targets) >= g.cfg.Replication
	for _, id := range targets {
		if have[id] {
			continue
		}
		g.mu.Lock()
		b := g.backends[id]
		g.mu.Unlock()
		if b == nil {
			healed = false
			continue
		}
		ctx, cancel := context.WithTimeout(g.baseCtx, healUploadTimeout)
		_, err := g.uploadTo(ctx, b, name, wire)
		cancel()
		if err != nil {
			healed = false
			continue
		}
		g.repairs.Add(1)
		// The healed replica holds the retained wire as of pm.ver —
		// stamp its applied vector so SLA routing trusts it and the
		// apply loop drains only what commits after this point.
		st.setAppliedLocked(id, pm.ver)
		kept = append(kept, id)
	}
	if len(kept) == len(pm.replicas) && !healed {
		return // nothing landed; keep the flag for the next probe
	}
	g.mu.Lock()
	if cur, ok := g.matrices[name]; ok && cur == pm {
		npm := pm.clone()
		npm.replicas = kept
		npm.needsHeal = !healed
		g.matrices[name] = npm
	}
	g.mu.Unlock()
}

// resyncBackend reconciles a returning backend with the placement
// table: matrices placed on it that it does not hold (it restarted
// with an empty in-memory registry) are re-uploaded from the gateway's
// retained wire forms, and matrices it holds that are no longer placed
// on it (they were re-placed or replaced while it was away) are
// deleted. A backend that restarted with a -data-dir recovers its
// placements from its own durable state, so its resync finds nothing
// missing — Resyncs advances while Repairs and ReseedBytes do not,
// which is how the stats distinguish disk recovery from gateway
// re-seeding. Best-effort: a failure leaves the backend to the
// estimate path's per-query repair.
func (g *Gateway) resyncBackend(b *backend) {
	ctx, cancel := context.WithTimeout(g.baseCtx, 30*time.Second)
	defer cancel()
	held, err := b.client.Matrices(ctx)
	if err != nil {
		return
	}
	g.resyncs.Add(1)
	holds := make(map[string]bool, len(held))
	for _, mi := range held {
		holds[mi.Name] = true
	}
	type reseed struct {
		name string
		pm   *placedMatrix
	}
	var missing []reseed
	g.mu.Lock()
	placed := make(map[string]bool, len(g.matrices))
	for name, pm := range g.matrices {
		for _, id := range pm.replicas {
			if id == b.id {
				placed[name] = true
				if !holds[name] {
					missing = append(missing, reseed{name, pm})
				}
				break
			}
		}
	}
	g.mu.Unlock()
	for _, m := range missing {
		wire, err := g.wireOf(m.pm)
		if err != nil {
			continue
		}
		// Reserve the backend's send slot for this matrix so an async
		// drain never interleaves a log replay with the reseed upload
		// (see async.go's ordering discipline).
		st := g.updState(m.name)
		if st != nil {
			st.mu.Lock()
			free := st.reserveLocked(b.id)
			st.mu.Unlock()
			if !free {
				continue // a drain owns the slot; it converges the copy
			}
		}
		if _, err := g.uploadTo(ctx, b, m.name, wire); err == nil {
			g.repairs.Add(1)
			g.reseedBytes.Add(wireSize(wire))
			g.setApplied(m.name, b.id, m.pm.ver)
		}
		if st != nil {
			st.release(b.id)
		}
	}
	for _, mi := range held {
		if !placed[mi.Name] {
			_ = b.client.DeleteMatrix(ctx, mi.Name)
		}
	}
}

// Backends lists the pool with per-backend health, load, and counters,
// sorted by address.
func (g *Gateway) Backends() []BackendStatus {
	g.mu.Lock()
	placements := make(map[string]int)
	for _, pm := range g.matrices {
		for _, id := range pm.replicas {
			placements[id]++
		}
	}
	backends := make([]*backend, 0, len(g.backends))
	for _, id := range g.backendIDsLocked(nil) {
		backends = append(backends, g.backends[id])
	}
	g.mu.Unlock()
	out := make([]BackendStatus, 0, len(backends))
	for _, b := range backends {
		out = append(out, b.status(placements[b.id]))
	}
	return out
}

// AddBackend registers a new backend and rebalances: every matrix
// whose rendezvous top-R now includes the new backend gains a copy
// there (and drops the replica that fell out of its top-R). Adding an
// address already in the pool that is draining un-drains it — the
// admin path to reverse a drain.
func (g *Gateway) AddBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	if g.isClosed() {
		return RebalanceReport{}, ErrClosed
	}
	if addr == "" {
		return RebalanceReport{}, fmt.Errorf("%w: empty backend addr", service.ErrBadRequest)
	}
	g.topoMu.Lock()
	defer g.topoMu.Unlock()
	g.mu.Lock()
	b, exists := g.backends[addr]
	if !exists {
		b = newBackend(addr, g.cfg.HTTPClient)
		b.dur = g.met.backendDur.With(addr)
		g.backends[addr] = b
	}
	g.mu.Unlock()
	b.mu.Lock()
	b.draining = false
	b.mu.Unlock()
	rep := g.rebalance(ctx)
	rep.Backend = addr
	rep.Action = "add"
	return rep, nil
}

// DrainBackend marks a backend draining — routing and new placements
// skip it — and rebalances every matrix placed on it onto the
// remaining eligible backends, deleting the drained copies. When the
// report shows zero failures the backend holds no placements and can
// be removed (or its process stopped) without losing a replica.
func (g *Gateway) DrainBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	if g.isClosed() {
		return RebalanceReport{}, ErrClosed
	}
	g.topoMu.Lock()
	defer g.topoMu.Unlock()
	g.mu.Lock()
	b, ok := g.backends[addr]
	g.mu.Unlock()
	if !ok {
		return RebalanceReport{}, fmt.Errorf("%w: %q", ErrUnknownBackend, addr)
	}
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	rep := g.rebalance(ctx)
	rep.Backend = addr
	rep.Action = "drain"
	return rep, nil
}

// RemoveBackend drops a backend from the pool, rebalancing its
// placements away first (an implicit drain). The backend's process is
// not contacted beyond the data moves — stopping it is the operator's
// call.
func (g *Gateway) RemoveBackend(ctx context.Context, addr string) (RebalanceReport, error) {
	if g.isClosed() {
		return RebalanceReport{}, ErrClosed
	}
	g.topoMu.Lock()
	defer g.topoMu.Unlock()
	g.mu.Lock()
	b, ok := g.backends[addr]
	g.mu.Unlock()
	if !ok {
		return RebalanceReport{}, fmt.Errorf("%w: %q", ErrUnknownBackend, addr)
	}
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	rep := g.rebalance(ctx)
	g.mu.Lock()
	delete(g.backends, addr)
	g.mu.Unlock()
	rep.Backend = addr
	rep.Action = "remove"
	return rep, nil
}

// rebalance reconciles every placement with the current pool: each
// matrix's target set is recomputed (rendezvous top-R over the
// placeable backends), copies are uploaded to gained replicas and
// deleted from lost ones, and the table is updated per matrix as its
// moves complete. Matrices whose target set is unchanged are
// untouched. A matrix whose upload to a gained replica fails keeps its
// old placement for the replicas it still has — the next admin
// operation or probe-resync retries. Callers hold g.topoMu.
func (g *Gateway) rebalance(ctx context.Context) RebalanceReport {
	var rep RebalanceReport
	g.mu.Lock()
	names := make([]string, 0, len(g.matrices))
	for name := range g.matrices {
		names = append(names, name)
	}
	placeable := g.backendIDsLocked((*backend).placeable)
	g.mu.Unlock()

	for _, name := range names {
		g.mu.Lock()
		pm, ok := g.matrices[name]
		var targets []string
		if ok {
			targets = placeOn(rankBackends(placeable, name), g.cfg.Replication)
		}
		g.mu.Unlock()
		if !ok {
			continue // deleted concurrently
		}
		if equalSets(pm.replicas, targets) {
			continue
		}
		have := make(map[string]bool, len(pm.replicas))
		for _, id := range pm.replicas {
			have[id] = true
		}
		// Resolve the wire copy (a spilled entry loads from the store)
		// before touching any replica; an unreadable copy keeps the old
		// placement for the next rebalance to retry.
		gains := false
		for _, id := range targets {
			if !have[id] {
				gains = true
				break
			}
		}
		var wire service.Matrix
		if gains {
			var werr error
			if wire, werr = g.wireOf(pm); werr != nil {
				rep.Failed++
				continue
			}
		}
		want := make(map[string]bool, len(targets))
		for _, id := range targets {
			want[id] = true
		}
		// Upload to gained replicas first so the replica count never
		// dips below what it was mid-move.
		kept := make([]string, 0, len(targets))
		for _, id := range pm.replicas {
			if want[id] {
				kept = append(kept, id)
			}
		}
		moved := false
		failed := false
		for _, id := range targets {
			if have[id] {
				continue
			}
			g.mu.Lock()
			b := g.backends[id]
			g.mu.Unlock()
			if b == nil {
				failed = true
				continue
			}
			if _, err := g.uploadTo(ctx, b, name, wire); err != nil {
				failed = true
				continue
			}
			// The gained replica holds pm's retained wire: stamp its
			// applied vector before the table swap publishes it to the
			// apply loop and SLA routing.
			g.setApplied(name, b.id, pm.ver)
			kept = append(kept, id)
			moved = true
		}
		if failed {
			rep.Failed++
			// The gains did not all land, so the losses are NOT deleted
			// — and they must stay in the table: they still hold live
			// copies, keep serving queries, and would otherwise be
			// reaped as stragglers by the next probe resync. The next
			// rebalance retries the move from this state.
			for _, id := range pm.replicas {
				if !want[id] {
					kept = append(kept, id)
				}
			}
		} else {
			// Drop the copies on replicas that fell out of the target
			// set only once every gain landed.
			for _, id := range pm.replicas {
				if want[id] {
					continue
				}
				g.mu.Lock()
				b := g.backends[id]
				g.mu.Unlock()
				if b != nil {
					delCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
					_ = b.client.DeleteMatrix(delCtx, name)
					cancel()
				}
				moved = true
			}
		}
		if moved || failed {
			g.mu.Lock()
			// Re-check the entry: a concurrent PutMatrix replaced it iff
			// the pointer changed, and its placement then already
			// reflects the new pool. A fully landed move supersedes any
			// pending heal; a partial one keeps the flag so the heal
			// pass resumes the repair.
			if cur, ok := g.matrices[name]; ok && cur == pm {
				npm := pm.clone()
				npm.replicas = kept
				npm.needsHeal = pm.needsHeal && failed
				g.matrices[name] = npm
			}
			g.mu.Unlock()
		}
		if moved {
			rep.Moved++
			g.rebalanced.Add(1)
		}
	}
	return rep
}

// equalSets reports whether two replica lists contain the same ids
// (order-insensitive; placement order is not load-bearing).
func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[string]bool, len(a))
	for _, id := range a {
		in[id] = true
	}
	for _, id := range b {
		if !in[id] {
			return false
		}
	}
	return true
}
