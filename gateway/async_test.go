package gateway

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/service"
)

// newAsyncGateway builds a gateway committing row updates on a write
// quorum of w with the background apply loop draining the rest.
func newAsyncGateway(t *testing.T, r, w int, addrs ...string) *Gateway {
	t.Helper()
	g := New(Config{
		Backends:         addrs,
		Replication:      r,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		ProbeBackoffMax:  100 * time.Millisecond,
		AsyncReplication: true,
		WriteQuorum:      w,
	})
	t.Cleanup(g.Close)
	return g
}

// backendSum reads a matrix's exact sum directly from one backend,
// bypassing the gateway — the ground truth for convergence checks.
func backendSum(ctx context.Context, addr, name string, n int) (float64, error) {
	res, err := service.NewClient(addr).Estimate(ctx, exactReq(name, n))
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

func TestAsyncUpdateCommitsOnQuorumAndDrains(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	g := newAsyncGateway(t, 3, 1, b1.addr, b2.addr, b3.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	rep, ver, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{2, 7}}), "")
	if err != nil {
		t.Fatalf("async update: %v", err)
	}
	if rep.RowsApplied != 1 {
		t.Fatalf("async update reply: %+v", rep)
	}
	if ver.seq == 0 {
		t.Fatalf("committed version = %v, want seq > 0", ver)
	}
	want := sum - 1 + 7

	// A strong read is correct immediately after the quorum commit,
	// before the apply loop has drained the lagging replicas.
	res, _, err := g.estimateSLA(ctx, exactReq("m", n), SLA{Level: ConsStrong}, "")
	if err != nil || res.Estimate != want {
		t.Fatalf("strong read after quorum commit: res=%v err=%v want=%v", res, err, want)
	}

	// The apply loop converges every replica to the committed state.
	for _, b := range []*testBackend{b1, b2, b3} {
		addr := b.addr
		waitFor(t, "replica "+addr+" to converge", func() bool {
			got, err := backendSum(ctx, addr, "m", n)
			return err == nil && got == want
		})
	}

	st := g.Stats()
	if !st.AsyncReplication || st.WriteQuorum != 1 {
		t.Fatalf("stats mode: async=%v W=%d", st.AsyncReplication, st.WriteQuorum)
	}
	if st.UpdateLogEntries == 0 {
		t.Fatal("no retained update-log entries after an async commit")
	}
	if st.AsyncApplied+st.AsyncReseeds < 2 {
		t.Fatalf("lagging replicas converged without the apply loop: applied=%d reseeds=%d",
			st.AsyncApplied, st.AsyncReseeds)
	}
}

// TestAsyncRMWPinsToAckedReplica kills one of two replicas and checks
// that a read-my-writes session still observes its own write: routing
// must pin to a replica that has applied the session's writes, and the
// restarted replica must be reseeded before serving the session again.
func TestAsyncRMWPinsToAckedReplica(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newAsyncGateway(t, 2, 1, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2}
	victim := byAddr[info.Replicas[1]]
	victim.stop()

	// The write commits on the surviving replica's ack alone.
	_, _, err = g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{3, 9}}), "rmw-sess")
	if err != nil {
		t.Fatalf("quorum-1 update with a dead replica: %v", err)
	}
	want := sum - 1 + 9

	// Read-my-writes must route to the acked replica, never the dead
	// (and behind) one, for as long as the session lives.
	for i := 0; i < 5; i++ {
		res, _, err := g.estimateSLA(ctx, exactReq("m", n), SLA{Level: ConsRMW}, "rmw-sess")
		if err != nil || res.Estimate != want {
			t.Fatalf("rmw read %d: res=%v err=%v want=%v", i, res, err, want)
		}
	}

	// Restart the victim: the prober readmits and reseeds it with the
	// committed state, after which it too can serve the session.
	victim.restart()
	waitFor(t, "restarted replica to be reseeded", func() bool {
		got, err := backendSum(ctx, victim.addr, "m", n)
		return err == nil && got == want
	})
	survivor := byAddr[info.Replicas[0]]
	survivor.stop()
	waitFor(t, "rmw read to fail over to the reseeded replica", func() bool {
		res, _, err := g.estimateSLA(ctx, exactReq("m", n), SLA{Level: ConsRMW}, "rmw-sess")
		return err == nil && res.Estimate == want
	})
}

// TestAsyncThroughputBeatsSyncWithSlowReplica is the acceptance check
// for the replication-mode split: with one replica serving PATCH
// slowly, sync commits pay the slow leg on every update while async
// commits return on the fast quorum ack and drain the slow replica in
// the background — at least 2× the replicated row-update throughput.
func TestAsyncThroughputBeatsSyncWithSlowReplica(t *testing.T) {
	n := 8
	const (
		patchDelay = 20 * time.Millisecond
		updates    = 15
	)
	slowEng := service.NewEngine(service.Config{Workers: 4, Shards: 1})
	t.Cleanup(slowEng.Close)
	slowH := service.NewHandler(slowEng)
	slowSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPatch {
			time.Sleep(patchDelay)
		}
		slowH.ServeHTTP(w, r)
	}))
	t.Cleanup(slowSrv.Close)
	b1, b2 := startBackend(t), startBackend(t)
	addrs := []string{b1.addr, b2.addr, slowSrv.URL}

	ctx := context.Background()
	wire, sum := testMatrix(n)

	run := func(g *Gateway, prefix string) (string, time.Duration) {
		t.Helper()
		// Pick a matrix name whose quorum head is a fast backend so the
		// async run measures quorum-commit latency, not the slow leg.
		name := ""
		for i := 0; i < 32; i++ {
			cand := fmt.Sprintf("%s%d", prefix, i)
			info, err := g.PutMatrix(ctx, cand, wire)
			if err != nil {
				t.Fatal(err)
			}
			if info.Replicas[0] != slowSrv.URL {
				name = cand
				break
			}
			if err := g.DeleteMatrix(ctx, cand); err != nil {
				t.Fatal(err)
			}
		}
		if name == "" {
			t.Fatal("no placement with a fast quorum head found")
		}
		start := time.Now()
		for i := 0; i < updates; i++ {
			if _, err := g.UpdateRows(ctx, name, replaceRowReq(0, [][2]int64{{2, int64(i + 2)}})); err != nil {
				t.Fatalf("%s update %d: %v", prefix, i, err)
			}
		}
		return name, time.Since(start)
	}

	gSync := newTestGateway(t, 3, addrs...)
	_, syncElapsed := run(gSync, "ts")

	gAsync := newAsyncGateway(t, 3, 1, addrs...)
	asyncName, asyncElapsed := run(gAsync, "ta")

	if syncElapsed < updates*patchDelay {
		t.Fatalf("sync run finished in %v — the slow replica leg was not on the commit path", syncElapsed)
	}
	if asyncElapsed*2 > syncElapsed {
		t.Fatalf("async throughput not ≥2× sync: async %v, sync %v", asyncElapsed, syncElapsed)
	}

	// Background drain still converges the slow replica to the final
	// committed state — async trades latency, not durability of order.
	want := sum - 1 + float64(updates+1)
	waitFor(t, "slow replica to drain the update backlog", func() bool {
		got, err := backendSum(ctx, slowSrv.URL, asyncName, n)
		return err == nil && got == want
	})
}

// TestGatewayDedupesIdempotencyKey checks the server-side half of the
// retry fix: a keyed delta update replayed with the same key must apply
// once and answer the remembered reply.
func TestGatewayDedupesIdempotencyKey(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	req := service.UpdateRequest{
		Updates: []service.RowUpdate{{Row: 0, Entries: [][2]int64{{5, 3}}}},
		Delta:   true,
		Key:     42,
	}
	first, err := g.UpdateRows(ctx, "m", req)
	if err != nil {
		t.Fatal(err)
	}
	// A delta replay without dedupe would add 3 again; the keyed replay
	// must be answered from the dedupe window instead.
	replay, err := g.UpdateRows(ctx, "m", req)
	if err != nil {
		t.Fatal(err)
	}
	if replay != first {
		t.Fatalf("replayed reply %+v != first %+v", replay, first)
	}
	res, err := g.Estimate(ctx, exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	if want := sum + 3; res.Estimate != want {
		t.Fatalf("delta applied %v times: sum=%v want=%v", (res.Estimate-sum)/3, res.Estimate, want)
	}
}

// TestSaturatedBackendSheds429 checks that a 429 + Retry-After reply
// marks a backend saturated — unroutable — for exactly the hinted
// window instead of a full probe-cycle demotion.
func TestSaturatedBackendSheds429(t *testing.T) {
	b := newBackend("http://127.0.0.1:2", nil)
	if !b.eligible() {
		t.Fatal("fresh backend not eligible")
	}
	b.noteFailover(&service.APIError{Status: http.StatusTooManyRequests, RetryAfter: 50 * time.Millisecond}, false)
	if b.eligible() {
		t.Fatal("saturated backend still eligible")
	}
	b.mu.Lock()
	healthy := b.healthy
	b.mu.Unlock()
	if !healthy {
		t.Fatal("a shed must not demote the backend to unhealthy")
	}
	waitFor(t, "saturation window to lapse", b.eligible)
}

// TestAsyncConsistencyUnderChurn is the -race integration test for the
// apply loop: concurrent updates and SLA reads while a replica is
// killed and restarted, with a bounded-staleness reader asserting its
// bound is never violated and a read-my-writes session never observing
// its own write missing. Clients must see zero errors throughout.
func TestAsyncConsistencyUnderChurn(t *testing.T) {
	n := 8
	b1, b2, b3 := startBackend(t), startBackend(t), startBackend(t)
	g := newAsyncGateway(t, 3, 1, b1.addr, b2.addr, b3.addr)
	srv := httptest.NewServer(NewHandler(g))
	t.Cleanup(srv.Close)
	ctx := context.Background()

	wire, base := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	wire2, base2 := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "rmw", wire2); err != nil {
		t.Fatal(err)
	}

	const bound = 500 * time.Millisecond
	var (
		mu      sync.Mutex
		commits []struct {
			at time.Time
			k  int64
		}
		failures []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: bumps row 0 of "m" to k=2,3,… and logs each commit's
	// return time — an upper bound on its commit point, so the bounded
	// reader's floor below is conservative.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := service.New(srv.URL, service.WithPathPrefix(""))
		for k := int64(2); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := client.UpdateRows(ctx, "m", replaceRowReq(0, [][2]int64{{2, k}})); err != nil {
				fail("writer k=%d: %v", k, err)
				return
			}
			mu.Lock()
			commits = append(commits, struct {
				at time.Time
				k  int64
			}{time.Now(), k})
			mu.Unlock()
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Bounded-staleness reader: an observation may never be older than
	// the newest write committed before (readStart - bound).
	floorChecked := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := service.New(srv.URL, service.WithPathPrefix(""),
			service.WithHeader("MP-Consistency", fmt.Sprintf("bounded:%v", bound)))
		for {
			select {
			case <-stop:
				return
			default:
			}
			readStart := time.Now()
			res, err := client.Estimate(ctx, exactReq("m", n))
			if err != nil {
				fail("bounded reader: %v", err)
				return
			}
			kObs := int64(res.Estimate-base) + 1
			cutoff := readStart.Add(-bound)
			var kFloor int64
			mu.Lock()
			for _, c := range commits {
				if c.at.After(cutoff) {
					break
				}
				kFloor = c.k
			}
			mu.Unlock()
			if kFloor > 0 {
				floorChecked++
			}
			if kObs < kFloor {
				fail("staleness bound violated: observed k=%d, floor k=%d", kObs, kFloor)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Read-my-writes session: writes row 1 of "rmw" then immediately
	// reads under the same session — its own write must never be
	// missing, regardless of which replicas have drained.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := service.New(srv.URL, service.WithPathPrefix(""),
			service.WithHeader("MP-Consistency", "rmw"),
			service.WithHeader("MP-Session", "churn-rmw"))
		for j := int64(3); ; j++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := client.UpdateRows(ctx, "rmw", replaceRowReq(1, [][2]int64{{3, j}})); err != nil {
				fail("rmw writer j=%d: %v", j, err)
				return
			}
			res, err := client.Estimate(ctx, exactReq("rmw", n))
			if err != nil {
				fail("rmw reader j=%d: %v", j, err)
				return
			}
			if want := base2 - 2 + float64(j); res.Estimate != want {
				fail("rmw session missed its own write: got %v, want %v (j=%d)", res.Estimate, want, j)
				return
			}
			time.Sleep(4 * time.Millisecond)
		}
	}()

	// Eventual readers: no staleness assertion, but zero errors.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := service.New(srv.URL, service.WithPathPrefix(""),
				service.WithHeader("MP-Consistency", "eventual"))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := client.Estimate(ctx, exactReq("m", n)); err != nil {
					fail("eventual reader: %v", err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Churn: kill the tail replica of "m" mid-run, then bring it back.
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2, b3.addr: b3}
	victim := byAddr[info.Replicas[len(info.Replicas)-1]]
	time.Sleep(250 * time.Millisecond)
	victim.stop()
	time.Sleep(350 * time.Millisecond)
	victim.restart()
	time.Sleep(450 * time.Millisecond)
	close(stop)
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d failures under churn, first: %s", len(failures), failures[0])
	}
	if floorChecked == 0 {
		t.Fatal("bounded reader never exercised a non-zero floor")
	}
	if len(commits) == 0 {
		t.Fatal("writer made no progress")
	}

	// After the churn settles, every replica converges on the final
	// committed value.
	finalK := commits[len(commits)-1].k
	want := base - 1 + float64(finalK)
	for _, b := range []*testBackend{b1, b2, b3} {
		addr := b.addr
		waitFor(t, "replica "+addr+" to converge after churn", func() bool {
			got, err := backendSum(ctx, addr, "m", n)
			return err == nil && got == want
		})
	}
}
