package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/service"
)

// Replicated row updates: PATCH /matrices/{name}/rows at the gateway
// applies a sparse row patch to every replica of a placed matrix and —
// critically for the repair path — retains the patched wire copy in
// the placement table in the same commit. Every later repair
// (estimate-path 404 re-seed, probe resync, rebalance move) re-uploads
// from that retained copy, so a replica repaired after an update comes
// back holding the updated matrix, not the bytes of the original
// upload. (Retaining only the upload-time copy was the bug class this
// design closes: updates that landed after the copy was taken were
// silently rolled back by the next repair. The update-then-repair
// regression test pins the fix.)
//
// Per-leg failures split the same way the routing layer splits them
// (see failoverable):
//
//   - an answered hard rejection (400/409/…) means the patch itself is
//     suspect on that backend — the update is all-or-nothing: every
//     leg that applied it is reverted to the retained pre-update wire
//     and the request fails;
//   - an answered 404 means the replica restarted empty — it is
//     repaired in line with a full upload of the *patched* wire and
//     counts as success;
//   - a transport-level failure (or an answered 502/503) means the
//     replica is unreachable or closing — it is dropped from the
//     placement and the update commits on the reachable legs; when the
//     backend returns, the probe resync deletes its stale copy
//     (straggler) and the post-repair rebalance re-places the matrix
//     from the patched retained wire, restoring the replica count.
//
// If no leg succeeds the update fails without committing; unreachable
// legs are still dropped so their (unknown-state) copies are resynced
// from the retained wire rather than trusted.

// patchWire applies a row update to a retained wire matrix, mirroring
// exactly the dense-side arithmetic the backends apply: replace mode
// makes each patched row exactly its listed entries; delta mode adds
// values cell-wise. Resulting zero cells are dropped from the wire
// form (equivalent under the dense semantics). It returns the patched
// wire and the distinct updated row indices.
func patchWire(w service.Matrix, ups []service.RowUpdate, delta bool) (service.Matrix, []int, error) {
	affected := make(map[int]map[int64]int64, len(ups))
	rows := make([]int, 0, len(ups))
	for _, u := range ups {
		if u.Row < 0 || u.Row >= w.Rows {
			return service.Matrix{}, nil, fmt.Errorf("%w: row %d outside %d-row matrix", service.ErrBadRequest, u.Row, w.Rows)
		}
		m := make(map[int64]int64, len(u.Entries))
		for _, ent := range u.Entries {
			if ent[0] < 0 || ent[0] >= int64(w.Cols) {
				return service.Matrix{}, nil, fmt.Errorf("%w: entry column %d outside %d-column matrix", service.ErrBadRequest, ent[0], w.Cols)
			}
			if _, dup := m[ent[0]]; dup {
				return service.Matrix{}, nil, fmt.Errorf("%w: duplicate column %d in row %d update", service.ErrBadRequest, ent[0], u.Row)
			}
			m[ent[0]] = ent[1]
		}
		affected[u.Row] = m
		rows = append(rows, u.Row)
	}
	out := service.Matrix{Rows: w.Rows, Cols: w.Cols}
	for _, ent := range w.Entries {
		m, hit := affected[int(ent[0])]
		if !hit {
			out.Entries = append(out.Entries, ent)
			continue
		}
		if !delta {
			continue // replaced row: old entries vanish
		}
		if dv, ok := m[ent[1]]; ok {
			delete(m, ent[1]) // merged into this entry; not re-emitted below
			if nv := ent[2] + dv; nv != 0 {
				out.Entries = append(out.Entries, [3]int64{ent[0], ent[1], nv})
			}
			continue
		}
		out.Entries = append(out.Entries, ent)
	}
	// Entries of the patch that did not merge into an existing cell.
	for _, u := range ups {
		m := affected[u.Row]
		for _, ent := range u.Entries {
			v, ok := m[ent[0]]
			if !ok {
				continue // delta already merged into an existing entry
			}
			if v != 0 {
				out.Entries = append(out.Entries, [3]int64{int64(u.Row), ent[0], v})
			}
		}
	}
	return out, rows, nil
}

// UpdateRows applies a row update to a placed matrix and atomically
// retains the patched wire copy for future repairs (see the file
// comment for the per-leg failure semantics). In sync mode (the
// default) every replica applies the patch before the call returns; in
// async mode (Config.AsyncReplication) the call commits once
// Config.WriteQuorum replicas ack and the apply loop drains the rest
// (see async.go). Updates are serialized per matrix; a concurrent full
// replacement of the name wins with ErrConflict and the replicas are
// converged back to it.
func (g *Gateway) UpdateRows(ctx context.Context, name string, req service.UpdateRequest) (service.UpdateReply, error) {
	rep, _, err := g.updateRowsSLA(ctx, name, req, "")
	return rep, err
}

// updateRowsSLA is UpdateRows plus the SLA bookkeeping: it also
// returns the committed version (the MP-Version response echo) and
// folds it into the session's read-my-writes floor.
func (g *Gateway) updateRowsSLA(ctx context.Context, name string, req service.UpdateRequest, sess string) (service.UpdateReply, version, error) {
	if g.isClosed() {
		return service.UpdateReply{}, version{}, ErrClosed
	}
	g.updates.Add(1)
	ups, err := req.Normalized()
	if err != nil {
		return service.UpdateReply{}, version{}, err
	}
	st := g.updState(name)
	if st == nil {
		return service.UpdateReply{}, version{}, fmt.Errorf("%w: %q", service.ErrMatrixNotFound, name)
	}
	st.mu.Lock() //mp:lockio-ok audited: the per-matrix commit lock is held across the replica legs by design — log-append order must equal send order (see async.go's ordering discipline)
	defer st.mu.Unlock()
	// A replayed client idempotency key returns the remembered reply
	// instead of applying twice (the WithRetry double-apply fix: the
	// first attempt may have committed before its connection died).
	if req.Key != 0 {
		if rec, ok := st.recent[req.Key]; ok {
			g.sessions.noteWrite(sess, name, rec.ver)
			return rec.rep, rec.ver, nil
		}
	}
	pm, reps, err := g.replicaSnapshot(name)
	if err != nil {
		return service.UpdateReply{}, version{}, err
	}
	if len(reps) == 0 {
		return service.UpdateReply{}, version{}, fmt.Errorf("%w: matrix %q has no replica to update", ErrNoBackends, name)
	}
	if st.head.epoch != pm.ver.epoch {
		// A wholesale replacement installed its table entry and is
		// waiting on st.mu to reset this state: its upload owns the
		// name, and patching its content would corrupt it.
		return service.UpdateReply{}, version{}, fmt.Errorf("%w: %q", service.ErrConflict, name)
	}
	// A spilled entry's wire loads from the store; the patched result
	// re-enters memory resident on commit (maybeSpill may re-spill it).
	oldWire, err := g.wireOf(pm)
	if err != nil {
		return service.UpdateReply{}, version{}, err
	}
	newWire, _, err := patchWire(oldWire, ups, req.Delta)
	if err != nil {
		return service.UpdateReply{}, version{}, err
	}
	newVer := version{epoch: pm.ver.epoch, seq: pm.ver.seq + 1}
	// The backends dedupe on the update-log seq (canonical within the
	// placement generation), so a drain replaying this same entry after
	// a partial commit is exact, never double-applied.
	fwd := req
	fwd.Key = newVer.seq

	var rep service.UpdateReply
	if g.cfg.AsyncReplication {
		rep, err = g.quorumCommitLocked(ctx, st, name, pm, reps, ups, fwd, oldWire, newWire, newVer)
	} else {
		rep, err = g.syncCommitLocked(ctx, st, name, pm, reps, ups, fwd, newWire, oldWire, newVer)
	}
	if err != nil {
		return service.UpdateReply{}, version{}, err
	}
	st.rememberLocked(req.Key, rep, newVer)
	g.sessions.noteWrite(sess, name, newVer)
	return rep, newVer, nil
}

// syncCommitLocked is the all-replica fanout commit: every replica
// applies the patch (or is repaired to the patched wire) before the
// call returns — see the file comment for the per-leg failure split.
// Callers hold st.mu.
func (g *Gateway) syncCommitLocked(ctx context.Context, st *matrixUpd, name string, pm *placedMatrix, reps []*backend, ups []service.RowUpdate, fwd service.UpdateRequest, newWire, oldWire service.Matrix, newVer version) (service.UpdateReply, error) {
	replies := make([]service.UpdateReply, len(reps))
	repaired := make([]bool, len(reps))
	errs, _ := fanout(reps, func(i int, b *backend) error {
		var err error
		replies[i], err = b.client.UpdateRows(ctx, name, fwd)
		if err == nil {
			return nil
		}
		// A replica that lost the matrix to a restart is repaired in
		// line with the patched wire: it then holds the post-update
		// matrix, which is exactly what the update wants.
		var apiErr *service.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
			if info, rerr := g.uploadTo(ctx, b, name, newWire); rerr == nil {
				g.repairs.Add(1)
				repaired[i] = true
				replies[i] = service.UpdateReply{MatrixInfo: info, RowsApplied: len(ups)}
				return nil
			}
		}
		return err
	})

	var hardErr error // first answered rejection: triggers the revert
	var okIdx []int
	dropped := make(map[string]bool)
	for i, err := range errs {
		if err == nil {
			okIdx = append(okIdx, i)
			continue
		}
		if droppable, _ := failoverable(err); droppable {
			dropped[reps[i].id] = true
			reps[i].noteFailover(err, isTransportLevel(err))
		} else if hardErr == nil {
			hardErr = err
		}
	}

	if hardErr != nil {
		// All-or-nothing: converge every leg that applied the patch (or
		// was repaired to it) back to the retained pre-update wire.
		g.updateReverts.Add(1)
		for _, i := range okIdx {
			revCtx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
			_, rerr := g.uploadTo(revCtx, reps[i], name, oldWire)
			cancel()
			if rerr != nil {
				// Divergent copy we cannot reach: drop it too, so the
				// resync sweep deletes it and a rebalance re-places.
				dropped[reps[i].id] = true
			}
		}
		g.pruneReplicas(name, pm, nil, pm.info, dropped, version{})
		return service.UpdateReply{}, fmt.Errorf("gateway: replicated update of %q rejected (reverted): %w", name, hardErr)
	}
	if len(okIdx) == 0 {
		// Nothing applied anywhere. The unreachable legs' copies are of
		// unknown state, so they are dropped for resync; the retained
		// wire stays pre-update.
		g.pruneReplicas(name, pm, nil, pm.info, dropped, version{})
		return service.UpdateReply{}, fmt.Errorf("%w: no replica of %q accepted the update", ErrAllReplicasFailed, name)
	}

	// Commit: the patched wire becomes the retained copy in the same
	// table write that publishes the update — repairs and resyncs from
	// here on re-seed the post-update matrix, and dropped replicas are
	// re-placed from it by the post-repair rebalance. The reply (and
	// the table's info) comes from a leg that actually applied the
	// patch when one exists: a 404-repaired leg's reply is synthesized
	// from its full re-upload, whose sub-version and cache counters do
	// not describe the update.
	best := okIdx[0]
	for _, i := range okIdx {
		if !repaired[i] {
			best = i
			break
		}
	}
	rep := replies[best]
	rep.RowsApplied = len(ups)
	if !g.pruneReplicas(name, pm, &newWire, rep.MatrixInfo, dropped, newVer) {
		g.convergeReplacement(name)
		return service.UpdateReply{}, fmt.Errorf("%w: %q", service.ErrConflict, name)
	}
	g.appendLogLocked(st, newVer, ups, fwd.Delta)
	for _, i := range okIdx {
		st.setAppliedLocked(reps[i].id, newVer)
	}
	g.maybeSpill()
	return rep, nil
}

// quorumCommitLocked is the async-mode commit: replicas are tried in
// placement order and the update commits once Config.WriteQuorum of
// them ack; the rest are left lagging for the apply loop to drain. No
// replica is dropped from the placement for a transport failure here —
// in async mode unreachable just means lagging, and the prober plus
// apply loop converge it when it returns. Callers hold st.mu.
func (g *Gateway) quorumCommitLocked(ctx context.Context, st *matrixUpd, name string, pm *placedMatrix, reps []*backend, ups []service.RowUpdate, fwd service.UpdateRequest, oldWire, newWire service.Matrix, newVer version) (service.UpdateReply, error) {
	need := min(g.cfg.WriteQuorum, len(reps))
	var acked []*backend
	var rep service.UpdateReply
	var gotReply bool
	var hardErr error
	for _, b := range reps {
		if len(acked) >= need {
			break
		}
		if st.sending[b.id] || !b.eligible() {
			continue // a drain owns its send slot, or it is unhealthy: leave it lagging
		}
		if av := st.applied[b.id]; av.Less(st.head) {
			// Bring a lagging candidate in line first so the patch
			// applies on top of its full log prefix.
			if !g.catchUpLocked(ctx, st, name, b) {
				continue
			}
		}
		reply, err := b.client.UpdateRows(ctx, name, fwd)
		if err != nil {
			var apiErr *service.APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
				if info, rerr := g.uploadTo(ctx, b, name, newWire); rerr == nil {
					g.repairs.Add(1)
					st.setAppliedLocked(b.id, newVer)
					acked = append(acked, b)
					if !gotReply {
						rep = service.UpdateReply{MatrixInfo: info, RowsApplied: len(ups)}
					}
					continue
				}
			}
			if droppable, _ := failoverable(err); droppable {
				b.noteFailover(err, isTransportLevel(err))
				continue
			}
			hardErr = err
			break
		}
		st.setAppliedLocked(b.id, newVer)
		acked = append(acked, b)
		rep, gotReply = reply, true
	}

	if hardErr != nil || len(acked) < need {
		// Not committed: converge every acked leg back to the retained
		// pre-update wire so no replica holds an uncommitted patch. A
		// leg unreachable mid-revert is stamped at the zero version —
		// never replayable — so the apply loop full-reseeds it.
		if len(acked) > 0 {
			g.updateReverts.Add(1)
		}
		for _, b := range acked {
			revCtx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
			_, rerr := g.uploadTo(revCtx, b, name, oldWire)
			cancel()
			if rerr != nil {
				st.setAppliedLocked(b.id, version{})
			} else {
				st.setAppliedLocked(b.id, pm.ver)
			}
		}
		g.wakeApply()
		if hardErr != nil {
			return service.UpdateReply{}, fmt.Errorf("gateway: replicated update of %q rejected (reverted): %w", name, hardErr)
		}
		return service.UpdateReply{}, fmt.Errorf("%w: update of %q reached %d of %d write-quorum acks", ErrNoBackends, name, len(acked), need)
	}

	rep.RowsApplied = len(ups)
	if !g.pruneReplicas(name, pm, &newWire, rep.MatrixInfo, nil, newVer) {
		g.convergeReplacement(name)
		return service.UpdateReply{}, fmt.Errorf("%w: %q", service.ErrConflict, name)
	}
	g.appendLogLocked(st, newVer, ups, fwd.Delta)
	g.maybeSpill()
	g.wakeApply()
	return rep, nil
}

// convergeReplacement handles an update losing the copy-on-write race
// to a full replacement of the name: the replacement's wholesale
// upload is authoritative, but a replica it wrote *before* the update
// landed there would now be divergent. Re-upload the replacement's
// retained wire to every current replica, best-effort.
func (g *Gateway) convergeReplacement(name string) {
	g.mu.Lock()
	cur, ok := g.matrices[name]
	g.mu.Unlock()
	if !ok {
		return
	}
	curWire, werr := g.wireOf(cur)
	_, curReps, err := g.replicaSnapshot(name)
	if err != nil || werr != nil {
		return
	}
	_, _ = fanout(curReps, func(_ int, b *backend) error {
		syncCtx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
		defer cancel()
		_, err := g.uploadTo(syncCtx, b, name, curWire)
		return err
	})
}

// isTransportLevel classifies an update-leg error for the backend's
// health bookkeeping.
func isTransportLevel(err error) bool {
	var apiErr *service.APIError
	return !errors.As(err, &apiErr)
}

// pruneReplicas installs the update outcome for name iff the table
// entry is still pm (compare half of the copy-on-write): the new info
// is recorded and the dropped replica ids removed. A non-nil newWire
// becomes the retained copy, resident (a spilled entry un-spills; its
// stale spill file is never read and is overwritten by the next
// spill); nil keeps pm's wire and spill state unchanged. An entry that
// lost replicas is flagged for the prober's heal pass, which re-places
// it from the retained wire. A non-nil newWire also advances the
// retained version to ver — the update-log head the commit assigned.
// Reports whether the swap happened.
func (g *Gateway) pruneReplicas(name string, pm *placedMatrix, newWire *service.Matrix, info service.MatrixInfo, dropped map[string]bool, ver version) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur, ok := g.matrices[name]
	if !ok || cur != pm {
		return false
	}
	kept := make([]string, 0, len(pm.replicas))
	for _, id := range pm.replicas {
		if !dropped[id] {
			kept = append(kept, id)
		}
	}
	n := len(pm.replicas) - len(kept)
	if n > 0 {
		g.lostReplicas.Add(int64(n))
	}
	npm := pm.clone()
	npm.info = info
	npm.replicas = kept
	npm.needsHeal = n > 0 || pm.needsHeal
	if newWire != nil {
		npm.wire = *newWire
		npm.wireBytes = wireSize(*newWire)
		npm.spilled = false
		npm.ver = ver
	}
	g.matrices[name] = npm
	return true
}
