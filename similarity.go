package matprod

// This file covers the inner-product similarity-join application the
// paper points to ([3] in its references): Alice holds a family of
// integer vectors (rows of A), Bob another family (columns of B), and
// the pairs with inner product above a threshold are exactly the heavy
// hitters of A·B.

import "repro/internal/core"

// EstimateLpMulti estimates several ‖AB‖p^p values in a single
// two-round execution — the round-amortized variant of EstimateLp for
// callers (query optimizers, statistics collectors) that need multiple
// norms of the same product. Results align with ps.
func EstimateLpMulti(a, b *IntMatrix, ps []float64, o LpOptions) ([]float64, Cost, error) {
	return core.EstimateLpMulti(a.m, b.m, ps, o)
}

// SimilarityJoin approximately returns the vector pairs (i, j) with
// ⟨A_i, B_j⟩ ≥ threshold·‖AB‖1 — the inner-product similarity join over
// the two families, answered by Algorithm 4's heavy-hitter machinery in
// Õ(√ϕ/ε·n) bits. threshold plays the role of ϕ; pairs between
// threshold/2 and threshold may also be returned (ε = ϕ/2).
func SimilarityJoin(a, b *IntMatrix, threshold float64, seed uint64) ([]WeightedPair, Cost, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, Cost{}, ErrBadPhi
	}
	return HeavyHitters(a, b, HHOptions{Phi: threshold, Eps: threshold / 2, Seed: seed})
}
