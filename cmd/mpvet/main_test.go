package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildMpvet compiles the mpvet binary into a temp dir and returns its
// path.
func buildMpvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mpvet")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/mpvet")
	cmd.Env = append(os.Environ(), "GOTOOLCHAIN=local")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mpvet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module for go vet to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// govet runs `go vet -vettool=bin ./...` inside dir.
func govet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOTOOLCHAIN=local", "GOWORK=off", "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVettoolFlagsSeededViolations drives the real unitchecker path end
// to end: go vet -vettool on a module seeded with one violation per
// contract must fail and name each analyzer's finding.
func TestVettoolFlagsSeededViolations(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := buildMpvet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.23\n",
		// mpdeterminism: unsorted map-range append in a protocol package.
		"internal/core/core.go": `package core

func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`,
		// mphotpath: allocation in an annotated function.
		"hot/hot.go": `package hot

//mp:hotpath
func Observe() []byte {
	return make([]byte, 8)
}
`,
	})
	out, err := govet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet passed on a module seeded with violations; output:\n%s", out)
	}
	for _, wantFrag := range []string{"map iteration order", "builtin make allocates"} {
		if !strings.Contains(out, wantFrag) {
			t.Errorf("go vet output missing %q:\n%s", wantFrag, out)
		}
	}
}

// TestVettoolPassesCleanModule is the flip side: a module honoring the
// contracts vets clean through the same driver.
func TestVettoolPassesCleanModule(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := buildMpvet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.23\n",
		"internal/core/core.go": `package core

import "sort"

func Keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
`,
	})
	out, err := govet(t, bin, dir)
	if err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}
