// Command mpvet is the repository's project-specific static-analysis
// suite, built on golang.org/x/tools/go/analysis and driven through
// the standard vet harness:
//
//	go build -o bin/mpvet ./cmd/mpvet
//	go vet -vettool=bin/mpvet ./...
//
// It composes the five invariant analyzers that mechanically enforce
// contracts this repository otherwise pins only by tests and comments:
//
//	mpdeterminism  protocol packages (core, sketch, comm) must not read
//	               wall clocks, use global math/rand, or leak map
//	               iteration order into transcripts or outputs
//	mpfloatorder   shard-pool closures must not accumulate floats onto
//	               captured variables (summation order = scheduling)
//	mphotpath      //mp:hotpath functions obey the zero-alloc/zero-lock
//	               metrics cost contract from DESIGN.md
//	mplockio       no sync mutex held across Transport I/O, HTTP
//	               round-trips, typed-client calls, or channel sends
//	mpwire         service/gateway handlers use DecodeJSON/WriteJSON/
//	               WriteError, never raw encoders or http.Error
//
// plus three general x/tools passes that guard adjacent bug classes
// (copylocks, lostcancel, httpresponse). The x/tools nilness analyzer
// is deliberately absent: it requires go/ssa, which the vendored
// toolchain copy of x/tools (third_party/golang.org/x/tools) does not
// ship; add it here if the module ever takes a networked x/tools
// dependency.
//
// Deliberate, audited exceptions are annotated in source with the
// //mp: waiver directives documented in repro/internal/analysis/directives.
package main

import (
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/httpresponse"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/determinism"
	"repro/internal/analysis/floatorder"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lockio"
	"repro/internal/analysis/wirediscipline"
)

func main() {
	unitchecker.Main(
		determinism.Analyzer,
		floatorder.Analyzer,
		hotpath.Analyzer,
		lockio.Analyzer,
		wirediscipline.Analyzer,
		copylock.Analyzer,
		lostcancel.Analyzer,
		httpresponse.Analyzer,
	)
}
