package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/loadcurve"
	"repro/internal/rng"
	"repro/service"
)

// lateSlack is how far past its scheduled arrival a dispatch may run
// before it is counted as late. Generous against scheduler jitter,
// tight against real generator overrun.
const lateSlack = 2 * time.Millisecond

// errShed marks an arrival dropped at the client-side inflight cap.
// It is accounted as a timeout at the full deadline: under coordinated
// omission rules the request "waited" at least that long unserved, and
// silently skipping it would make an overloaded server look fast.
var errShed = errors.New("mpload: client inflight cap reached")

// openLoopCfg parameterizes one constant-rate open-loop step.
type openLoopCfg struct {
	rps         float64
	arrivals    string // "uniform" or "poisson"
	warmup      time.Duration
	measure     time.Duration
	timeout     time.Duration
	maxInflight int
	seed        uint64
	// prepare builds one request closure. It runs on the scheduler
	// goroutine (so it may use the scheduler's rng); the returned call
	// runs on its own goroutine and must be self-contained.
	prepare func(r *rng.RNG) func(ctx context.Context) error
}

// stepTally accumulates one open-loop step's measure-phase outcomes.
type stepTally struct {
	mu       sync.Mutex
	ok       int64
	errs     int64
	rejected int64
	timeouts int64
	lats     []time.Duration // successful completions, scheduled-arrival based
}

func (s *stepTally) record(lat time.Duration, err error) {
	rejected, timedOut := classifyErr(err)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.ok++
		s.lats = append(s.lats, lat)
		return
	}
	s.errs++
	if rejected {
		s.rejected++
	}
	if timedOut {
		s.timeouts++
	}
}

// classifyErr sorts a request error into the open-loop accounting
// buckets: a 429 is the server shedding load (expected at and past the
// knee), a deadline error — or a client-side shed — is a timeout.
func classifyErr(err error) (rejected, timedOut bool) {
	if err == nil {
		return false, false
	}
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == 429, false
	}
	if errors.Is(err, errShed) || errors.Is(err, context.DeadlineExceeded) {
		return false, true
	}
	var netErr interface{ Timeout() bool }
	if errors.As(err, &netErr) && netErr.Timeout() {
		return false, true
	}
	return false, false
}

// runOpenLoopStep drives one constant-rate open-loop step: arrivals are
// scheduled ahead of time (uniform spacing or a Poisson process), each
// dispatches on its own goroutine bounded by the inflight cap, and
// latency is measured from the scheduled arrival — not the dispatch —
// so queueing delay inside the generator counts against the server's
// percentiles instead of being coordinated-omitted away.
//
// Only arrivals scheduled inside the measure window (after warmup) are
// tallied; warmup traffic is driven identically and discarded.
func runOpenLoopStep(ctx context.Context, cfg openLoopCfg) loadcurve.Point {
	interval := time.Duration(float64(time.Second) / cfg.rps)
	r := rng.New(cfg.seed).Derive("openloop")
	sem := make(chan struct{}, cfg.maxInflight)
	tally := &stepTally{}
	var offered, late int64
	var wg sync.WaitGroup

	start := time.Now()
	measStart := start.Add(cfg.warmup)
	measEnd := measStart.Add(cfg.measure)
	next := start
	for next.Before(measEnd) && ctx.Err() == nil {
		time.Sleep(time.Until(next))
		sched := next
		if cfg.arrivals == "poisson" {
			// Exponential inter-arrival: −ln(U)/λ, clamped against a
			// pathological U≈0 draw stalling the generator.
			u := r.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			gap := time.Duration(-math.Log(u) * float64(interval))
			if gap > 10*time.Second {
				gap = 10 * time.Second
			}
			next = next.Add(gap)
		} else {
			next = next.Add(interval)
		}
		inMeasure := !sched.Before(measStart)
		if inMeasure {
			offered++
			if time.Since(sched) > lateSlack {
				late++
			}
		}
		call := cfg.prepare(r)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				cctx, cancel := context.WithTimeout(ctx, cfg.timeout)
				err := call(cctx)
				cancel()
				if inMeasure {
					tally.record(time.Since(sched), err)
				}
			}()
		default:
			if inMeasure {
				tally.record(cfg.timeout, errShed)
			}
		}
	}
	wg.Wait()

	tally.mu.Lock()
	defer tally.mu.Unlock()
	sort.Slice(tally.lats, func(i, j int) bool { return tally.lats[i] < tally.lats[j] })
	pt := loadcurve.Point{
		TargetRPS:      cfg.rps,
		OfferedRPS:     float64(offered) / cfg.measure.Seconds(),
		ThroughputRPS:  float64(tally.ok) / cfg.measure.Seconds(),
		Rejected:       tally.rejected,
		Timeouts:       tally.timeouts,
		LateDispatches: late,
		LatencyP50:     percentile(tally.lats, 0.50),
		LatencyP90:     percentile(tally.lats, 0.90),
		LatencyP99:     percentile(tally.lats, 0.99),
	}
	if total := tally.ok + tally.errs; total > 0 {
		pt.ErrorRate = float64(tally.errs) / float64(total)
	}
	return pt
}

// sweepCfg parameterizes an open-loop run: a single -rps step or a
// full -rps-sweep capacity sweep.
type sweepCfg struct {
	addr         string
	mix          string
	rps          float64
	sweep        string // comma-separated target rates; empty = single step at rps
	arrivals     string
	warmup       time.Duration
	measure      time.Duration
	timeout      time.Duration
	maxInflight  int
	seed         uint64
	loadcurveOut string
	gatewayMode  bool
	prepare      func(r *rng.RNG) func(ctx context.Context) error
}

// parseRPSList parses "25,50,100" into ascending target rates.
func parseRPSList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("empty rate list")
	}
	sort.Float64s(out)
	return out, nil
}

// runSweep drives the open-loop steps, fits the capacity model over
// them, and writes BENCH_loadcurve.json. Request failures (429s,
// timeouts) are expected at and past the knee and never fail the run;
// only a run where nothing succeeded at all exits non-zero.
func runSweep(ctx context.Context, cfg sweepCfg) {
	targets := []float64{cfg.rps}
	if cfg.sweep != "" {
		var err error
		targets, err = parseRPSList(cfg.sweep)
		if err != nil {
			log.Fatalf("-rps-sweep: %v", err)
		}
	}
	log.Printf("open loop: %d step(s) at %v rps, %s arrivals, warmup %v + measure %v per step, inflight cap %d",
		len(targets), targets, cfg.arrivals, cfg.warmup, cfg.measure, cfg.maxInflight)

	points := make([]loadcurve.Point, 0, len(targets))
	anyOK := false
	for i, target := range targets {
		pt := runOpenLoopStep(ctx, openLoopCfg{
			rps:         target,
			arrivals:    cfg.arrivals,
			warmup:      cfg.warmup,
			measure:     cfg.measure,
			timeout:     cfg.timeout,
			maxInflight: cfg.maxInflight,
			// Distinct seeds per step keep the workload draws
			// independent while the whole sweep stays reproducible.
			seed:    cfg.seed + uint64(i),
			prepare: cfg.prepare,
		})
		logPoint(pt)
		points = append(points, pt)
		if pt.ThroughputRPS > 0 {
			anyOK = true
		}
	}

	rep := loadcurve.Report{
		Schema:         loadcurve.SchemaVersion,
		Target:         cfg.addr,
		Arrivals:       cfg.arrivals,
		Kind:           cfg.mix,
		WarmupSeconds:  cfg.warmup.Seconds(),
		MeasureSeconds: cfg.measure.Seconds(),
		Points:         points,
	}
	fit, err := loadcurve.FitPoints(points)
	if err != nil {
		rep.FitError = err.Error()
		if len(targets) > 1 {
			log.Printf("capacity fit skipped: %v", err)
		}
	} else {
		rep.Fit = fit
		if fit.HasKnee {
			log.Printf("USL fit: γ=%.1f σ=%.3f κ=%.2g (R²=%.3f); predicted knee ≈ %.0f rps offered, ≈ %.0f rps served at peak",
				fit.Gamma, fit.Sigma, fit.Kappa, fit.R2, fit.KneeRPS, fit.PeakThroughputRPS)
		} else {
			log.Printf("USL fit: γ=%.1f σ=%.3f κ=%.2g (R²=%.3f); no knee within 10× the observed load range (peak observed-model throughput %.0f rps)",
				fit.Gamma, fit.Sigma, fit.Kappa, fit.R2, fit.PeakThroughputRPS)
		}
	}
	if cfg.loadcurveOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("marshal loadcurve: %v", err)
		}
		if err := os.WriteFile(cfg.loadcurveOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("write %s: %v", cfg.loadcurveOut, err)
		}
		log.Printf("wrote %s (%d points)", cfg.loadcurveOut, len(points))
	}
	if cfg.gatewayMode {
		printGatewayStats(ctx, cfg.addr)
	}
	if !anyOK {
		log.Printf("no request succeeded in any step")
		os.Exit(1)
	}
}

// logPoint prints one sweep step's outcome.
func logPoint(pt loadcurve.Point) {
	log.Printf("rps %.0f: offered %.1f/s, served %.1f/s, err %.1f%% (429s %d, timeouts %d, late %d), p50 %v p90 %v p99 %v",
		pt.TargetRPS, pt.OfferedRPS, pt.ThroughputRPS, 100*pt.ErrorRate,
		pt.Rejected, pt.Timeouts, pt.LateDispatches,
		pt.LatencyP50.Round(time.Microsecond),
		pt.LatencyP90.Round(time.Microsecond),
		pt.LatencyP99.Round(time.Microsecond))
}
