// Command mpload is a closed-loop load generator for mpserver: it
// uploads a served matrix, then drives a mixed estimation workload from
// concurrent workers and reports per-kind latency percentiles and
// communication costs.
//
//	mpserver -addr :8080 &
//	mpload -addr http://127.0.0.1:8080 -n 512 -workers 8 -duration 5s
//
// The default mix exercises every protocol kind the server offers; set
// -mix "lp=4,exact=1" style weights to shape it. With -qps 0 each
// worker issues its next request as soon as the previous answer lands
// (closed loop); -qps > 0 paces the aggregate request rate. The exit
// code is non-zero if any request failed.
//
// Two flags shape a repeat-query serving workload: -batch N ships N
// queries per POST /estimate/batch call (one server admission slot per
// batch; latencies are reported amortized per query), and -pin-seed S
// pins every query's job seed so the server's Bob-side sketch cache
// answers repeats from its precomputed state:
//
//	mpload -addr http://127.0.0.1:8080 -mix lp=1 -batch 16 -pin-seed 7
//
// With -chunk-rows N the served matrix is admitted through the chunked
// streaming-ingestion endpoint (POST /matrices/{name}/chunks, N rows
// per chunk) instead of one monolithic PUT body — the path for matrices
// beyond the server's single-body size limit.
//
// With -gateway the target is an mpgateway fleet front rather than a
// single mpserver: the load path is identical (the gateway mirrors the
// service API), and after the run the generator fetches the gateway's
// stats and prints the fleet view — per-backend request counts and
// health plus the placement/failover/retry counters — so a mid-run
// backend kill shows up as failovers rather than client errors:
//
//	mpload -gateway -addr http://127.0.0.1:8080 -duration 10s
//
// The mix accepts the pseudo-kind "update" for a mixed read/write
// workload: each "update" pick issues one PATCH /matrices/{name}/rows
// replacing -update-rows random rows with fresh 0/1 entries (the
// served matrix stays binary and non-negative, so every estimation
// kind remains valid throughout). Against a single server this
// exercises the sketch-cache revalidation path; against a gateway, the
// replicated all-or-nothing propagation:
//
//	mpload -addr http://127.0.0.1:8080 -mix lp=8,exact=2,update=1 -duration 10s
//
// Against a gateway, reads can carry a consistency SLA: -consistency
// pins one level on every estimate (eventual | monotonic | rmw |
// bounded:<dur> | strong, with -session supplying the token the
// session levels track), and -sla-sweep "eventual,monotonic,rmw,
// bounded:250ms,strong" drives one closed-loop step per level against
// an update-bearing mix and writes the measured latency-vs-staleness
// frontier — per-level read percentiles plus the gateway's SLA
// hit/catchup/miss outcomes — to -slacurve-out (BENCH_slacurve.json):
//
//	mpload -gateway -addr http://127.0.0.1:8080 -mix lp=8,update=1 -sla-sweep eventual,rmw,strong
//
// # Open-loop mode and the capacity model
//
// With -rps > 0 the generator switches from closed-loop to open-loop:
// arrivals are scheduled at the target rate (-arrivals uniform spacing
// or a poisson process) independently of how fast answers come back,
// each request runs on its own goroutine (bounded by -max-inflight),
// and latency is measured from the scheduled arrival rather than the
// dispatch — so a stalled server accrues queueing delay in the
// percentiles instead of silently slowing the generator down
// (coordinated omission). Each step drives -warmup of discarded
// traffic and then -measure of tallied traffic; requests are bounded
// by -timeout, arrivals past the inflight cap are accounted as
// timeouts, and dispatches that slip more than 2ms past their schedule
// are counted as late (a generator-saturation diagnostic).
//
// With -rps-sweep "50,100,200,400" the generator runs one open-loop
// step per target, fits the throughput-vs-offered-load curve with the
// Universal Scalability Law (internal/loadcurve), reports the
// predicted capacity knee, and writes the sweep and fit to
// -loadcurve-out (BENCH_loadcurve.json by default):
//
//	mpload -addr http://127.0.0.1:8080 -mix lp=1 -rps-sweep 25,50,100,200 -measure 10s
//
// Open-loop runs exit zero even when requests fail with 429s or
// timeouts — finding the overload point is the purpose — and exit
// non-zero only when no request succeeds at all. Requests are driven
// singly (-batch does not apply). In every mode a progress line with
// the last interval's counts and percentiles is logged every
// -report-interval (default 20s).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/gateway"
	"repro/internal/rng"
	"repro/internal/workload"
	"repro/service"
)

type kindWeight struct {
	kind   string
	weight int
}

// parseMix parses "lp=4,exact=2" into cumulative pick weights.
func parseMix(s string) ([]kindWeight, int, error) {
	var mix []kindWeight
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, weightStr, ok := strings.Cut(part, "=")
		w := 1
		if ok {
			var err error
			w, err = strconv.Atoi(weightStr)
			if err != nil || w < 0 {
				return nil, 0, fmt.Errorf("bad weight in %q", part)
			}
		}
		if _, known := service.Kinds[kind]; !known && kind != "update" {
			return nil, 0, fmt.Errorf("unknown kind %q", kind)
		}
		if w == 0 {
			continue
		}
		total += w
		mix = append(mix, kindWeight{kind: kind, weight: w})
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("empty mix")
	}
	return mix, total, nil
}

// kindTally accumulates one kind's measurements under the shared lock.
type kindTally struct {
	requests int64
	errors   int64
	bits     int64
	rounds   int64
	lats     []time.Duration
}

type tallies struct {
	mu      sync.Mutex
	perKind map[string]*kindTally
	// ivReqs/ivErrs/ivLats accumulate since the last reporter tick —
	// the in-run progress lines read and reset them.
	ivReqs int64
	ivErrs int64
	ivLats []time.Duration
}

func (t *tallies) record(kind string, lat time.Duration, bits int64, rounds int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kt := t.perKind[kind]
	if kt == nil {
		kt = &kindTally{}
		t.perKind[kind] = kt
	}
	kt.requests++
	t.ivReqs++
	if err != nil {
		kt.errors++
		t.ivErrs++
		return
	}
	kt.bits += bits
	kt.rounds += int64(rounds)
	kt.lats = append(kt.lats, lat)
	t.ivLats = append(t.ivLats, lat)
}

// intervalTake drains the since-last-tick accumulator.
func (t *tallies) intervalTake() (reqs, errs int64, lats []time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	reqs, errs, lats = t.ivReqs, t.ivErrs, t.ivLats
	t.ivReqs, t.ivErrs, t.ivLats = 0, 0, nil
	return reqs, errs, lats
}

// startReporter logs a progress line with the last interval's batch
// percentiles every period until stop closes. Intervals with no
// completed requests log a stall note instead of a zero row.
func startReporter(t *tallies, period time.Duration, stop <-chan struct{}) {
	if period <= 0 {
		return
	}
	start := time.Now()
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			reqs, errs, lats := t.intervalTake()
			since := time.Since(start).Round(time.Second)
			if reqs == 0 {
				log.Printf("[t+%v] no requests completed this interval", since)
				continue
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			log.Printf("[t+%v] %d reqs (%d errs), %.1f req/s, p50 %v p90 %v p99 %v",
				since, reqs, errs, float64(reqs)/period.Seconds(),
				percentile(lats, 0.50).Round(time.Microsecond),
				percentile(lats, 0.90).Round(time.Microsecond),
				percentile(lats, 0.99).Round(time.Microsecond))
		}
	}()
}

// percentile is service.Percentile: the nearest-rank quantile, shared
// with the server so both report latencies by one definition.
func percentile(sorted []time.Duration, q float64) time.Duration {
	return service.Percentile(sorted, q)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	workers := flag.Int("workers", 8, "concurrent load workers")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	qps := flag.Float64("qps", 0, "aggregate request rate (0 = closed loop, as fast as answers land)")
	mixFlag := flag.String("mix", "lp=4,exact=2,l0sample=1,l1sample=1,linf=1,linfkappa=1,hh=1", "workload mix of kind=weight pairs")
	matrix := flag.String("matrix", "bench", "served matrix name")
	n := flag.Int("n", 512, "matrix dimension (served matrix is n×n, queries are n×n)")
	density := flag.Float64("density", 0.02, "matrix density")
	seed := flag.Uint64("seed", 1, "workload generation seed; job seeds derive from it")
	upload := flag.Bool("upload", true, "generate and upload the served matrix before driving load")
	eps := flag.Float64("eps", 0.3, "accuracy parameter for lp/l0sample/linf")
	phi := flag.Float64("phi", 0.2, "heavy-hitter threshold (eps for hh is phi/2)")
	p := flag.Float64("p", 1, "norm index for lp")
	aPool := flag.Int("a-pool", 8, "distinct query (Alice) matrices to rotate through")
	batch := flag.Int("batch", 1, "queries per request: >1 uses POST /estimate/batch (one admission slot per batch; latencies reported amortized per query)")
	pinSeed := flag.Uint64("pin-seed", 0, "pin every query's job seed (>0) so repeat queries hit the server's sketch cache; 0 lets the server assign epoch seeds")
	chunkRows := flag.Int("chunk-rows", 0, "upload the served matrix through POST /matrices/{name}/chunks with this many rows per chunk (0 = single-body PUT)")
	gatewayMode := flag.Bool("gateway", false, "target is an mpgateway fleet front: print the gateway's per-backend and failover stats after the run")
	updateRows := flag.Int("update-rows", 1, "rows replaced per \"update\" pick in the mix (PATCH /matrices/{name}/rows batch size)")
	rps := flag.Float64("rps", 0, "open-loop target arrival rate (0 = closed loop); latencies are measured from the scheduled arrival")
	rpsSweep := flag.String("rps-sweep", "", "comma-separated open-loop target rates to sweep (e.g. 25,50,100,200); fits a USL capacity model and implies open loop")
	arrivals := flag.String("arrivals", "uniform", "open-loop arrival process: uniform or poisson")
	warmup := flag.Duration("warmup", 2*time.Second, "open-loop warmup per step (driven but not tallied)")
	measure := flag.Duration("measure", 10*time.Second, "open-loop measure phase per step")
	timeout := flag.Duration("timeout", 5*time.Second, "open-loop per-request deadline; arrivals shed at the inflight cap count as timeouts")
	maxInflight := flag.Int("max-inflight", 256, "open-loop cap on concurrent in-flight requests")
	loadcurveOut := flag.String("loadcurve-out", "BENCH_loadcurve.json", "where -rps-sweep writes its points and USL fit (empty = don't write)")
	reportInterval := flag.Duration("report-interval", 20*time.Second, "period of in-run progress lines with batch percentiles (0 = off)")
	wireFmt := flag.String("wire", "json", "hot-path wire format: json or binary (negotiated per request; servers without binary support fall back to JSON)")
	consistency := flag.String("consistency", "", "consistency SLA attached to every read against a gateway: eventual | monotonic | rmw | bounded:<dur> | strong (empty: server default, strong)")
	session := flag.String("session", "", "session token pinned on every request (with -consistency monotonic/rmw; empty: client mints none)")
	slaSweep := flag.String("sla-sweep", "", "comma-separated consistency levels to sweep (e.g. eventual,monotonic,rmw,bounded:250ms,strong): one closed-loop step per level measuring the latency-vs-staleness frontier; pair with an update-bearing -mix")
	slacurveOut := flag.String("slacurve-out", "BENCH_slacurve.json", "where -sla-sweep writes its per-level points (empty = don't write)")
	flag.Parse()

	if *batch < 1 {
		log.Fatalf("-batch must be ≥ 1")
	}
	openLoop := *rpsSweep != "" || *rps > 0
	if *arrivals != "uniform" && *arrivals != "poisson" {
		log.Fatalf("-arrivals must be uniform or poisson, got %q", *arrivals)
	}
	if openLoop && *maxInflight < 1 {
		log.Fatalf("-max-inflight must be ≥ 1")
	}

	mix, mixTotal, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatalf("-mix: %v", err)
	}

	var clientOpts []service.ClientOption
	switch *wireFmt {
	case "json":
	case "binary":
		clientOpts = append(clientOpts, service.WithAccept(service.MediaTypeBinary))
	default:
		log.Fatalf("-wire must be json or binary, got %q", *wireFmt)
	}
	var slaLevels []string
	if *slaSweep != "" {
		for _, lvl := range strings.Split(*slaSweep, ",") {
			lvl = strings.TrimSpace(lvl)
			if lvl == "" {
				continue
			}
			if _, err := gateway.ParseConsistency(lvl); err != nil {
				log.Fatalf("-sla-sweep: %v", err)
			}
			slaLevels = append(slaLevels, lvl)
		}
		if len(slaLevels) == 0 {
			log.Fatalf("-sla-sweep: no levels")
		}
	}
	if *consistency != "" {
		if _, err := gateway.ParseConsistency(*consistency); err != nil {
			log.Fatalf("-consistency: %v", err)
		}
		clientOpts = append(clientOpts, service.WithHeader("MP-Consistency", *consistency))
	}
	if *session != "" {
		clientOpts = append(clientOpts, service.WithHeader("MP-Session", *session))
	}
	client := service.New(*addr, append(clientOpts, service.WithPathPrefix(""))...)
	ctx := context.Background()

	// Boolean matrices satisfy every kind's preconditions (binary for
	// the ℓ∞ kinds, non-negative for exact/l1sample).
	if *upload {
		b := workload.Binary(*seed, *n, *n, *density)
		wire := service.MatrixFromBool(b)
		var info service.MatrixInfo
		var err error
		if *chunkRows > 0 {
			info, err = client.UploadMatrixChunked(ctx, *matrix, wire, *chunkRows)
		} else {
			info, err = client.UploadMatrix(ctx, *matrix, wire)
		}
		if err != nil {
			log.Fatalf("upload: %v", err)
		}
		how := "single body"
		if *chunkRows > 0 {
			how = fmt.Sprintf("%d-row chunks", *chunkRows)
		}
		log.Printf("uploaded %q (%s): %dx%d, %d non-zeros", info.Name, how, info.Rows, info.Cols, info.NNZ)
	}
	pool := make([]service.Matrix, *aPool)
	for i := range pool {
		pool[i] = service.MatrixFromBool(workload.Binary(*seed+uint64(i)+1, *n, *n, *density))
	}

	// Optional aggregate pacing: a token per admitted request.
	var tokens chan struct{}
	if *qps > 0 && !openLoop {
		interval := time.Duration(float64(time.Second) / *qps)
		if interval <= 0 {
			log.Fatalf("-qps %v too high (sub-nanosecond interval); use 0 for closed loop", *qps)
		}
		tokens = make(chan struct{})
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for range tick.C {
				select {
				case tokens <- struct{}{}:
				default: // workers saturated; shed the token
				}
			}
		}()
	}

	tally := &tallies{perKind: make(map[string]*kindTally)}
	deadline := time.Now().Add(*duration)
	var firstErr error
	var errOnce sync.Once

	pickKind := func(r *rng.RNG) string {
		pick := r.Intn(mixTotal)
		for _, kw := range mix {
			if pick < kw.weight {
				return kw.kind
			}
			pick -= kw.weight
		}
		return mix[len(mix)-1].kind
	}

	// makeUpdate builds one random row-replacement request: fresh 0/1
	// rows at the workload density, so the served matrix keeps every
	// kind's preconditions while its content churns.
	if *updateRows < 1 {
		log.Fatalf("-update-rows must be ≥ 1")
	}
	if *updateRows > *n {
		*updateRows = *n
	}
	makeUpdate := func(r *rng.RNG) service.UpdateRequest {
		var req service.UpdateRequest
		seen := make(map[int]bool, *updateRows)
		for len(req.Updates) < *updateRows {
			row := r.Intn(*n)
			if seen[row] {
				continue
			}
			seen[row] = true
			u := service.RowUpdate{Row: row}
			for j := 0; j < *n; j++ {
				if r.Float64() < *density {
					u.Entries = append(u.Entries, [2]int64{int64(j), 1})
				}
			}
			req.Updates = append(req.Updates, u)
		}
		return req
	}

	makeReq := func(r *rng.RNG, kind string) service.Request {
		req := service.Request{
			Matrix: *matrix,
			Kind:   kind,
			A:      pool[r.Intn(len(pool))],
			Eps:    *eps,
		}
		switch kind {
		case "lp":
			req.P = *p
		case "hh":
			req.Phi = *phi
			req.Eps = *phi / 2
		case "l1sample", "exact":
			req.Eps = 0
		}
		if *pinSeed > 0 {
			req.Seed = pinSeed
		}
		return req
	}

	if len(slaLevels) > 0 {
		if openLoop {
			log.Fatalf("-sla-sweep is a closed-loop mode; drop -rps/-rps-sweep")
		}
		log.Printf("sweeping %d consistency levels, %v each (mix %s, %d workers)",
			len(slaLevels), *duration, *mixFlag, *workers)
		runSLACurve(ctx, slaCurveCfg{
			addr:        *addr,
			levels:      slaLevels,
			workers:     *workers,
			duration:    *duration,
			out:         *slacurveOut,
			mix:         *mixFlag,
			matrix:      *matrix,
			seed:        *seed,
			clientOpts:  clientOpts,
			gatewayMode: *gatewayMode,
			pickKind:    pickKind,
			makeReq:     makeReq,
			makeUpdate:  makeUpdate,
		})
		return
	}

	if openLoop {
		// prepare runs on the scheduler goroutine (single rng), the
		// returned closure on its own goroutine. Every completion also
		// lands in the shared tally so the periodic reporter covers
		// open-loop runs too.
		prepare := func(r *rng.RNG) func(context.Context) error {
			kind := pickKind(r)
			if kind == "update" {
				upd := makeUpdate(r)
				return func(cctx context.Context) error {
					start := time.Now()
					_, err := client.UpdateRows(cctx, *matrix, upd)
					tally.record("update", time.Since(start), 0, 0, err)
					return err
				}
			}
			req := makeReq(r, kind)
			return func(cctx context.Context) error {
				start := time.Now()
				res, err := client.Estimate(cctx, req)
				if err != nil {
					tally.record(req.Kind, time.Since(start), 0, 0, err)
					return err
				}
				tally.record(req.Kind, time.Since(start), res.Bits, res.Rounds, nil)
				return nil
			}
		}
		stop := make(chan struct{})
		startReporter(tally, *reportInterval, stop)
		runSweep(ctx, sweepCfg{
			addr:         *addr,
			mix:          *mixFlag,
			rps:          *rps,
			sweep:        *rpsSweep,
			arrivals:     *arrivals,
			warmup:       *warmup,
			measure:      *measure,
			timeout:      *timeout,
			maxInflight:  *maxInflight,
			seed:         *seed,
			loadcurveOut: *loadcurveOut,
			gatewayMode:  *gatewayMode,
			prepare:      prepare,
		})
		close(stop)
		return
	}

	log.Printf("driving %d workers for %v (mix %s, qps %s)", *workers, *duration, *mixFlag,
		map[bool]string{true: fmt.Sprintf("%.0f", *qps), false: "closed-loop"}[*qps > 0])
	reporterStop := make(chan struct{})
	startReporter(tally, *reportInterval, reporterStop)

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(*seed).Derive("mpload", strconv.Itoa(w))
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				kind := pickKind(r)
				if kind == "update" {
					// One write per pick, batch mode or not: updates take
					// the PATCH path, never the estimate batch.
					upd := makeUpdate(r)
					start := time.Now()
					_, err := client.UpdateRows(ctx, *matrix, upd)
					lat := time.Since(start)
					if err != nil {
						errOnce.Do(func() { firstErr = fmt.Errorf("update: %w", err) })
					}
					tally.record("update", lat, 0, 0, err)
					continue
				}
				if *batch == 1 {
					req := makeReq(r, kind)
					start := time.Now()
					res, err := client.Estimate(ctx, req)
					lat := time.Since(start)
					if err != nil {
						errOnce.Do(func() { firstErr = fmt.Errorf("%s: %w", req.Kind, err) })
						tally.record(req.Kind, lat, 0, 0, err)
						continue
					}
					tally.record(req.Kind, lat, res.Bits, res.Rounds, nil)
					continue
				}
				reqs := make([]service.Request, *batch)
				for i := range reqs {
					k := pickKind(r)
					if k == "update" {
						k = kind // keep batches pure reads; the write path is above
					}
					reqs[i] = makeReq(r, k)
				}
				start := time.Now()
				items, err := client.EstimateBatch(ctx, reqs)
				lat := time.Since(start)
				perQuery := lat / time.Duration(len(reqs))
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("batch: %w", err) })
					for _, req := range reqs {
						tally.record(req.Kind, perQuery, 0, 0, err)
					}
					continue
				}
				for i, item := range items {
					kind := reqs[i].Kind
					if item.Error != "" {
						itemErr := fmt.Errorf("%s: %s", kind, item.Error)
						errOnce.Do(func() { firstErr = itemErr })
						tally.record(kind, perQuery, 0, 0, itemErr)
						continue
					}
					tally.record(kind, perQuery, item.Result.Bits, item.Result.Rounds, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	close(reporterStop)

	printSummary(tally, *duration)
	if *gatewayMode {
		printGatewayStats(ctx, *addr)
	}
	if firstErr != nil {
		log.Printf("first error: %v", firstErr)
		os.Exit(1)
	}
}

// printGatewayStats fetches and prints the fleet view after a
// -gateway run: the routing counters that show how much failover the
// run absorbed, and one line per backend.
func printGatewayStats(ctx context.Context, addr string) {
	gc := gateway.NewClient(addr)
	st, err := gc.GatewayStats(ctx)
	if err != nil {
		log.Printf("gateway stats: %v", err)
		return
	}
	fmt.Printf("gateway: %d matrices at replication %d, %d estimates, %d batches, %d updates (%d reverts), %d failovers, %d retries, %d repairs, %d rebalanced\n",
		st.Matrices, st.Replication, st.Estimates, st.Batches, st.Updates, st.UpdateReverts, st.Failovers, st.Retries, st.Repairs, st.Rebalanced)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "backend\tstate\tmatrices\treqs\terrs\tfailovers\tp50\tp99")
	for _, b := range st.Backends {
		state := "healthy"
		if !b.Healthy {
			state = "unhealthy"
		}
		if b.Draining {
			state += ",draining"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%v\t%v\n",
			b.Addr, state, b.Matrices, b.Requests, b.Errors, b.Failovers,
			b.LatencyP50.Round(time.Microsecond), b.LatencyP99.Round(time.Microsecond))
	}
	tw.Flush()
}

func printSummary(t *tallies, dur time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kinds := make([]string, 0, len(t.perKind))
	for k := range t.perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kind\treqs\terrs\tp50\tp90\tp99\tmean bits\tmean rounds")
	var totReq, totErr, totBits int64
	var allLats []time.Duration
	for _, k := range kinds {
		kt := t.perKind[k]
		sort.Slice(kt.lats, func(i, j int) bool { return kt.lats[i] < kt.lats[j] })
		okReqs := kt.requests - kt.errors
		meanBits, meanRounds := int64(0), 0.0
		if okReqs > 0 {
			meanBits = kt.bits / okReqs
			meanRounds = float64(kt.rounds) / float64(okReqs)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\t%v\t%d\t%.1f\n",
			k, kt.requests, kt.errors,
			percentile(kt.lats, 0.50).Round(time.Microsecond),
			percentile(kt.lats, 0.90).Round(time.Microsecond),
			percentile(kt.lats, 0.99).Round(time.Microsecond),
			meanBits, meanRounds)
		totReq += kt.requests
		totErr += kt.errors
		totBits += kt.bits
		allLats = append(allLats, kt.lats...)
	}
	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	fmt.Fprintf(tw, "total\t%d\t%d\t%v\t%v\t%v\t\t\n", totReq, totErr,
		percentile(allLats, 0.50).Round(time.Microsecond),
		percentile(allLats, 0.90).Round(time.Microsecond),
		percentile(allLats, 0.99).Round(time.Microsecond))
	tw.Flush()
	fmt.Printf("throughput: %.1f req/s, protocol payload: %d bits total\n",
		float64(totReq-totErr)/dur.Seconds(), totBits)
}
