package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/gateway"
	"repro/internal/rng"
	"repro/service"
)

// slaCurvePoint is one measured point on the latency-vs-staleness
// frontier: a closed-loop mixed read/update step driven entirely at one
// consistency level, plus the gateway's SLA outcome counters for the
// level over the step.
type slaCurvePoint struct {
	// Level is the consistency token the step's reads carried
	// (e.g. "eventual", "bounded:250ms").
	Level string `json:"level"`
	// Reads and ReadErrors count the step's estimate calls.
	Reads      int64 `json:"reads"`
	ReadErrors int64 `json:"read_errors"`
	// Updates and UpdateErrors count the step's row-update calls.
	Updates      int64 `json:"updates"`
	UpdateErrors int64 `json:"update_errors"`
	// ReadsPerSec is successful read throughput over the measure phase.
	ReadsPerSec float64 `json:"reads_per_sec"`
	// P50/P90/P99 are read latency percentiles in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	// SLAHits/SLACatchups/SLAMisses are the gateway's outcome counters
	// for the level, taken as a before/after delta around the step
	// (zero when the target is a bare mpserver).
	SLAHits     int64 `json:"sla_hits"`
	SLACatchups int64 `json:"sla_catchups"`
	SLAMisses   int64 `json:"sla_misses"`
}

// slaCurveOut is the BENCH_slacurve.json document.
type slaCurveOut struct {
	Mix      string          `json:"mix"`
	Workers  int             `json:"workers"`
	Duration string          `json:"duration"`
	Points   []slaCurvePoint `json:"points"`
}

type slaCurveCfg struct {
	addr        string
	levels      []string
	workers     int
	duration    time.Duration
	out         string
	mix         string
	matrix      string
	seed        uint64
	clientOpts  []service.ClientOption
	gatewayMode bool
	pickKind    func(r *rng.RNG) string
	makeReq     func(r *rng.RNG, kind string) service.Request
	makeUpdate  func(r *rng.RNG) service.UpdateRequest
}

// runSLACurve drives one closed-loop step per consistency level and
// writes the measured latency-vs-staleness frontier to cfg.out. Each
// level gets per-worker clients pinning MP-Consistency (and, for the
// session levels, a client-minted MP-Session token), so a step's reads
// all route under one SLA while the mix's updates churn the update log
// underneath them.
func runSLACurve(ctx context.Context, cfg slaCurveCfg) {
	gc := gateway.NewClient(cfg.addr)
	var points []slaCurvePoint
	anyOK := false
	for _, level := range cfg.levels {
		levelKey, _, _ := strings.Cut(level, ":")
		var before gateway.SLAStats
		if cfg.gatewayMode {
			if st, err := gc.GatewayStats(ctx); err == nil {
				before = st.SLA[levelKey]
			}
		}
		pt := driveSLALevel(ctx, cfg, level)
		if cfg.gatewayMode {
			if st, err := gc.GatewayStats(ctx); err == nil {
				after := st.SLA[levelKey]
				pt.SLAHits = after.Hits - before.Hits
				pt.SLACatchups = after.Catchups - before.Catchups
				pt.SLAMisses = after.Misses - before.Misses
			}
		}
		log.Printf("sla %-14s %d reads (%d errs) %.1f read/s p50 %.2fms p99 %.2fms, %d updates (%d errs), outcomes hit=%d catchup=%d miss=%d",
			level, pt.Reads, pt.ReadErrors, pt.ReadsPerSec, pt.P50Ms, pt.P99Ms,
			pt.Updates, pt.UpdateErrors, pt.SLAHits, pt.SLACatchups, pt.SLAMisses)
		points = append(points, pt)
		if pt.Reads > pt.ReadErrors {
			anyOK = true
		}
		// Let the apply loop drain the step's update backlog so the next
		// level starts from converged replicas, not the previous step's lag.
		time.Sleep(time.Second)
	}
	if cfg.out != "" {
		doc := slaCurveOut{Mix: cfg.mix, Workers: cfg.workers, Duration: cfg.duration.String(), Points: points}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(cfg.out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			log.Printf("write %s: %v", cfg.out, err)
		} else {
			log.Printf("wrote SLA curve (%d levels) to %s", len(points), cfg.out)
		}
	}
	if cfg.gatewayMode {
		printGatewayStats(ctx, cfg.addr)
	}
	if !anyOK {
		log.Printf("no read succeeded at any level")
		os.Exit(1)
	}
}

// driveSLALevel runs one closed-loop step with every read pinned to the
// given consistency level and returns its tallied point.
func driveSLALevel(ctx context.Context, cfg slaCurveCfg, level string) slaCurvePoint {
	var (
		mu   sync.Mutex
		pt   = slaCurvePoint{Level: level}
		lats []time.Duration
	)
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := append([]service.ClientOption{}, cfg.clientOpts...)
			opts = append(opts, service.WithPathPrefix(""), service.WithHeader("MP-Consistency", level))
			if level == "monotonic" || level == "rmw" {
				// Client-minted session token: the gateway creates the
				// session on first use, and each worker keeps its own so
				// read-my-writes pins to the worker's writes only.
				opts = append(opts, service.WithHeader("MP-Session",
					fmt.Sprintf("mpload-%s-%d-w%d", level, cfg.seed, w)))
			}
			client := service.New(cfg.addr, opts...)
			r := rng.New(cfg.seed).Derive("mpload-sla", level, fmt.Sprint(w))
			for time.Now().Before(deadline) {
				kind := cfg.pickKind(r)
				if kind == "update" {
					upd := cfg.makeUpdate(r)
					_, err := client.UpdateRows(ctx, cfg.matrix, upd)
					mu.Lock()
					pt.Updates++
					if err != nil {
						pt.UpdateErrors++
					}
					mu.Unlock()
					continue
				}
				req := cfg.makeReq(r, kind)
				start := time.Now()
				_, err := client.Estimate(ctx, req)
				lat := time.Since(start)
				mu.Lock()
				pt.Reads++
				if err != nil {
					pt.ReadErrors++
				} else {
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pt.P50Ms = ms(percentile(lats, 0.50))
	pt.P90Ms = ms(percentile(lats, 0.90))
	pt.P99Ms = ms(percentile(lats, 0.99))
	pt.ReadsPerSec = float64(int64(len(lats))) / cfg.duration.Seconds()
	return pt
}
