// Command mpgateway fronts a fleet of mpserver backends as one
// estimation service: it places matrices across the fleet by
// consistent (rendezvous) hashing with a configurable replication
// factor, routes estimates to the least-busy healthy replica with
// automatic failover, scatters batches, health-checks the backends,
// and rebalances placements when the pool changes at runtime.
//
//	mpserver -addr :8081 &
//	mpserver -addr :8082 &
//	mpserver -addr :8083 &
//	mpgateway -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 -replication 2
//
// The gateway serves the same JSON API as mpserver (clients and
// mpload work unchanged pointed at it) plus the admin surface:
//
//	GET  /admin/backends   pool listing with health and counters
//	POST /admin/backends   {"op":"add"|"drain"|"remove","addr":"http://…"}
//	GET  /stats            gateway + per-backend counters (placements, failovers, retries, latencies)
//	GET  /metrics          Prometheus text exposition of the fleet telemetry (mpgw_* families)
//
// Kill a backend mid-load and the gateway fails queries over to the
// surviving replicas; restart it and the health prober re-seeds it
// from the gateway's retained matrix copies and re-admits it. See
// docs/API.md for the full API and README.md for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/gateway"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082)")
	replication := flag.Int("replication", 2, "replicas per matrix (R)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health prober base period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
	probeBackoffMax := flag.Duration("probe-backoff-max", 30*time.Second, "cap on the prober's exponential backoff for failing backends")
	uploadTTL := flag.Duration("upload-ttl", 2*time.Minute, "idle replicated chunked uploads are garbage-collected after this long")
	dataDir := flag.String("data-dir", "", "spill store directory for retained wire copies past -wire-cache-budget (empty: keep all copies in memory)")
	fsyncFlag := flag.String("fsync", "never", "spill store fsync policy: always | batch | never (with -data-dir; the spill store is a cache, so never is the sane default)")
	wireBudget := flag.Int64("wire-cache-budget", 0, "resident byte budget for retained wire copies; the largest copies past it spill to -data-dir (0: unlimited)")
	async := flag.Bool("async", false, "commit row updates on -write-quorum acks and drain the rest via the background apply loop (default: every replica, synchronously)")
	writeQuorum := flag.Int("write-quorum", 1, "replica acks a row update commits on in -async mode (W)")
	updateLogMax := flag.Int("update-log-max", 0, "retained update-log entries per matrix; replicas lagging past the log are reseeded from the full wire copy (0: default 1024)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle consistency sessions (monotonic / read-my-writes tokens) expire after this long (0: default 10m)")
	flag.Parse()

	var pool []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			pool = append(pool, b)
		}
	}
	if len(pool) == 0 {
		log.Fatalf("no backends: pass -backends (more can be added at runtime via POST /admin/backends)")
	}
	var spill store.Store
	if *wireBudget > 0 && *dataDir == "" {
		log.Fatalf("-wire-cache-budget needs -data-dir to spill to")
	}
	if *dataDir != "" {
		mode, err := store.ParseFsyncMode(*fsyncFlag)
		if err != nil {
			log.Fatalf("-fsync: %v", err)
		}
		disk, err := store.OpenDisk(store.DiskConfig{Dir: *dataDir, Fsync: mode})
		if err != nil {
			log.Fatalf("open -data-dir: %v", err)
		}
		defer disk.Close()
		spill = disk
	}

	gw := gateway.New(gateway.Config{
		Backends:         pool,
		Replication:      *replication,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		ProbeBackoffMax:  *probeBackoffMax,
		UploadTTL:        *uploadTTL,
		Store:            spill,
		WireCacheBudget:  *wireBudget,
		AsyncReplication: *async,
		WriteQuorum:      *writeQuorum,
		UpdateLogMax:     *updateLogMax,
		SessionTTL:       *sessionTTL,
	})
	defer gw.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gateway.NewHandler(gw),
		ReadHeaderTimeout: 10 * time.Second,
	}

	mode := "sync"
	if *async {
		mode = fmt.Sprintf("async W=%d", *writeQuorum)
	}
	log.Printf("mpgateway listening on %s (backends=%d replication=%d replication-mode=%s probe-interval=%v)",
		*addr, len(pool), *replication, mode, *probeInterval)
	for _, b := range pool {
		log.Printf("backend: %s", b)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		log.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	st := gw.Stats()
	log.Printf("routed %d estimates, %d batches across %d backends: %d failovers, %d retries, %d repairs, %d rebalanced",
		st.Estimates, st.Batches, len(st.Backends), st.Failovers, st.Retries, st.Repairs, st.Rebalanced)
	for _, b := range st.Backends {
		state := "healthy"
		if !b.Healthy {
			state = fmt.Sprintf("unhealthy (%s)", b.LastError)
		}
		if b.Draining {
			state += ", draining"
		}
		log.Printf("backend %s: %s, %d matrices, %d reqs (%d errors), p50=%v p99=%v",
			b.Addr, state, b.Matrices, b.Requests, b.Errors, b.LatencyP50, b.LatencyP99)
	}
}
