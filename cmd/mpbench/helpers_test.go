package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intmat"
)

func TestAbsMatrix(t *testing.T) {
	m := intmat.NewDense(2, 2)
	m.Set(0, 0, -5)
	m.Set(1, 1, 3)
	a := absMatrix(m)
	if a.Get(0, 0) != 5 || a.Get(1, 1) != 3 {
		t.Fatalf("absMatrix wrong: %d, %d", a.Get(0, 0), a.Get(1, 1))
	}
	if m.Get(0, 0) != -5 {
		t.Fatal("absMatrix mutated its input")
	}
}

func TestToBinary(t *testing.T) {
	m := intmat.NewDense(2, 3)
	m.Set(0, 1, 7)
	m.Set(1, 2, -1)
	b := toBinary(m)
	if !b.Get(0, 1) || !b.Get(1, 2) || b.Get(0, 0) {
		t.Fatal("toBinary entries wrong")
	}
}

func TestHHSetsAndQuality(t *testing.T) {
	c := intmat.NewDense(2, 2)
	c.Set(0, 0, 10) // 10/16 heavy
	c.Set(0, 1, 4)  // 4/16 in the (ϕ−ε, ϕ) band for ϕ=0.5, ε=0.3
	c.Set(1, 0, 1)
	c.Set(1, 1, 1)
	must, may := hhSets(c, 1, 0.5, 0.3)
	if len(must) != 1 || !must[core.Pair{I: 0, J: 0}] {
		t.Fatalf("must = %v", must)
	}
	if len(may) != 2 || !may[core.Pair{I: 0, J: 1}] {
		t.Fatalf("may = %v", may)
	}

	// Perfect output.
	out := []core.WeightedPair{{I: 0, J: 0, Value: 10}}
	prec, rec := hhQuality(out, must, may)
	if !prec || !rec {
		t.Fatal("perfect output judged bad")
	}
	// Missing the heavy entry.
	prec, rec = hhQuality(nil, must, may)
	if !prec || rec {
		t.Fatal("empty output should fail recall only")
	}
	// Spurious light entry.
	out = []core.WeightedPair{{I: 0, J: 0, Value: 10}, {I: 1, J: 1, Value: 1}}
	prec, rec = hhQuality(out, must, may)
	if prec || !rec {
		t.Fatal("spurious entry should fail precision only")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f1(1.25) != "1.2" && f1(1.25) != "1.3" {
		t.Fatalf("f1 = %q", f1(1.25))
	}
	if f3(0.5) != "0.500" {
		t.Fatalf("f3 = %q", f3(0.5))
	}
	if fi(42) != "42" {
		t.Fatalf("fi = %q", fi(42))
	}
	if fpct(0.125) != "12.5%" {
		t.Fatalf("fpct = %q", fpct(0.125))
	}
	if boolStr(true) != "✓" || boolStr(false) != "✗" {
		t.Fatal("boolStr wrong")
	}
}

func TestRelErrHelper(t *testing.T) {
	if relErr(11, 10) != 0.1 {
		t.Fatalf("relErr = %v", relErr(11, 10))
	}
	if relErr(3, 0) != 3 {
		t.Fatalf("relErr with zero truth = %v", relErr(3, 0))
	}
}

func TestFastExperimentsSmoke(t *testing.T) {
	// The cheap experiments must run end to end without panicking.
	for _, id := range []string{"E3", "E5", "E11"} {
		for _, e := range experiments {
			if e.id == id {
				e.run(1)
			}
		}
	}
}
