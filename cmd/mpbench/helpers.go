package main

import (
	"math"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/intmat"
)

// intmatDense shortens signatures in experiments.go.
type intmatDense = intmat.Dense

// absMatrix returns the entrywise absolute value.
func absMatrix(m *intmat.Dense) *intmat.Dense {
	out := intmat.NewDense(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j, v := range m.Row(i) {
			if v < 0 {
				v = -v
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// toBinary converts a 0/1 integer matrix to a bit matrix.
func toBinary(m *intmat.Dense) *bitmat.Matrix {
	out := bitmat.New(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j, v := range m.Row(i) {
			if v != 0 {
				out.Set(i, j, true)
			}
		}
	}
	return out
}

// hhSets computes the exact HH_ϕ and HH_{ϕ-ε} sets of c.
func hhSets(c *intmat.Dense, p, phi, eps float64) (must, may map[core.Pair]bool) {
	norm := c.Lp(p)
	must = map[core.Pair]bool{}
	may = map[core.Pair]bool{}
	for _, e := range c.NonZeros() {
		pow := math.Pow(math.Abs(float64(e.V)), p)
		if pow >= phi*norm {
			must[core.Pair{I: e.I, J: e.J}] = true
		}
		if pow >= (phi-eps)*norm {
			may[core.Pair{I: e.I, J: e.J}] = true
		}
	}
	return must, may
}

// hhQuality reports whether the output satisfies the two HH inclusions:
// precision (S ⊆ HH_{ϕ-ε}) and recall (HH_ϕ ⊆ S).
func hhQuality(out []core.WeightedPair, must, may map[core.Pair]bool) (precision, recall bool) {
	precision, recall = true, true
	got := map[core.Pair]bool{}
	for _, wp := range out {
		pr := core.Pair{I: wp.I, J: wp.J}
		got[pr] = true
		if !may[pr] {
			precision = false
		}
	}
	for pr := range must {
		if !got[pr] {
			recall = false
		}
	}
	return precision, recall
}
