package main

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/workload"
)

// experiments is the registry, in DESIGN.md order.
var experiments = []experiment{
	{"E1", "ℓ0: 2-round Õ(n/ε) vs 1-round Õ(n/ε²) (Thm 3.1 vs [16])", runE1},
	{"E2", "ℓp accuracy for p ∈ {0, 0.5, 1, 1.5, 2} (Thm 3.1)", runE2},
	{"E3", "exact ‖AB‖1 in O(n log n) bits (Remark 2)", runE3},
	{"E4", "ℓ0-sampling uniformity and cost (Thm 3.2)", runE4},
	{"E5", "ℓ1-sampling in O(n log n) bits (Remark 3)", runE5},
	{"E6", "ℓ∞ binary (2+ε)-approx, Õ(n^1.5/ε) bits (Thm 4.1)", runE6},
	{"E7", "ℓ∞ binary κ-approx, Õ(n^1.5/κ) bits (Thm 4.3)", runE7},
	{"E8", "ℓ∞ general κ-approx, Õ(n²/κ²) bits (Thm 4.8(1))", runE8},
	{"E9", "heavy hitters, general matrices (Thm 5.1)", runE9},
	{"E10", "heavy hitters, binary matrices (Thm 5.3)", runE10},
	{"E11", "lower-bound gadget verification (Thm 4.4/4.5/4.8(2))", runE11},
	{"E12", "distributed matmul Õ(n√‖AB‖0) (Lemma 2.5)", runE12},
	{"E13", "rectangular matrices (Section 6)", runE13},
	{"E14", "rounds vs bandwidth: modeled wall-clock on LAN/WAN", runE14},
	{"A1", "ablation: Algorithm 3 universe sampling", runA1},
}

func runE14(seed uint64) {
	// Why the paper optimizes rounds *and* bits: under a pipe model
	// (time = rounds·RTT + bits/bandwidth), compare the 2-round Õ(n/ε)
	// protocol with the 1-round Õ(n/ε²) baseline on reference links.
	n := 192
	a := workload.Binary(seed+30, n, n, 0.08).ToInt()
	b := workload.Binary(seed+31, n, n, 0.08).ToInt()
	row("eps", "protocol", "bits", "rounds", "LAN est", "WAN est")
	for _, eps := range []float64{0.2, 0.05} {
		_, c2, err := core.EstimateLp(a, b, 0, core.LpOpts{Eps: eps, Seed: seed})
		if err != nil {
			panic(err)
		}
		_, c1, err := core.OneRoundLp(a, b, 0, core.LpOpts{Eps: eps, Seed: seed})
		if err != nil {
			panic(err)
		}
		row(f3(eps), "2-round (Thm 3.1)", fi(c2.Bits), fi(int64(c2.Rounds)),
			comm.LAN.Estimate(c2.Stats).String(), comm.WAN.Estimate(c2.Stats).String())
		row(f3(eps), "1-round ([16])", fi(c1.Bits), fi(int64(c1.Rounds)),
			comm.LAN.Estimate(c1.Stats).String(), comm.WAN.Estimate(c1.Stats).String())
	}
	fmt.Printf("links: LAN %s; WAN %s\n", comm.LAN, comm.WAN)
	fmt.Println("paper: the extra round costs one RTT; the 1/ε bit saving dominates as ε shrinks.")
}

func runE1(seed uint64) {
	n := 192
	a := workload.Binary(seed, n, n, 0.08).ToInt()
	b := workload.Binary(seed+1, n, n, 0.08).ToInt()
	truth := float64(a.Mul(b).L0())
	row("eps", "2-round bits", "2-round err", "1-round bits", "1-round err", "bit ratio 1r/2r")
	for _, eps := range []float64{0.4, 0.2, 0.1, 0.05} {
		e2, c2, err := core.EstimateLp(a, b, 0, core.LpOpts{Eps: eps, Seed: seed})
		if err != nil {
			panic(err)
		}
		e1, c1, err := core.OneRoundLp(a, b, 0, core.LpOpts{Eps: eps, Seed: seed})
		if err != nil {
			panic(err)
		}
		row(f3(eps), fi(c2.Bits), fpct(relErr(e2, truth)), fi(c1.Bits),
			fpct(relErr(e1, truth)), f1(float64(c1.Bits)/float64(c2.Bits)))
	}
	fmt.Println("paper: 1-round/2-round bit ratio should grow like 1/ε as ε shrinks.")
}

func runE2(seed uint64) {
	n := 128
	a := workload.Integer(seed+2, n, n, 0.1, 3, false)
	b := workload.Integer(seed+3, n, n, 0.1, 3, false)
	row("p", "truth ‖C‖p^p", "estimate", "rel err", "bits", "rounds")
	for _, p := range []float64{0, 0.5, 1, 1.5, 2} {
		truth := a.Mul(b).Lp(p)
		est, cost, err := core.EstimateLp(a, b, p, core.LpOpts{Eps: 0.25, Seed: seed})
		if err != nil {
			panic(err)
		}
		row(f1(p), f1(truth), f1(est), fpct(relErr(est, truth)), fi(cost.Bits), fi(int64(cost.Rounds)))
	}
	fmt.Println("paper: every row within (1±ε); 2 rounds.")
}

func runE3(seed uint64) {
	row("n", "‖AB‖1 exact", "protocol", "bits", "bits/n")
	for _, n := range []int{128, 256, 512} {
		a := workload.Integer(seed+4, n, n, 0.1, 3, false)
		b := workload.Integer(seed+5, n, n, 0.1, 3, false)
		a, b = absOf(a), absOf(b)
		want := a.Mul(b).L1()
		got, cost, err := core.ExactL1(a, b)
		if err != nil {
			panic(err)
		}
		status := "exact ✓"
		if got != want {
			status = fmt.Sprintf("MISMATCH %d", got)
		}
		row(fi(int64(n)), fi(want), status, fi(cost.Bits), f1(float64(cost.Bits)/float64(n)))
	}
	fmt.Println("paper: exact answer, O(n log n) bits, 1 round.")
}

func runE4(seed uint64) {
	n := 96
	a := workload.Binary(seed+6, n, n, 0.03).ToInt()
	b := workload.Binary(seed+7, n, n, 0.03).ToInt()
	c := a.Mul(b)
	support := c.L0()
	counts := map[core.Pair]int{}
	trials, fails := 800, 0
	var bits int64
	for t := 0; t < trials; t++ {
		pair, _, cost, err := core.SampleL0(a, b, core.L0SampleOpts{Eps: 0.5, Seed: seed + uint64(t)})
		bits = cost.Bits
		if err != nil {
			fails++
			continue
		}
		counts[pair]++
	}
	// Total-variation distance of the empirical distribution from uniform
	// over the support. With finitely many samples even a perfect
	// uniform sampler shows substantial empirical TV, so a simulated
	// perfect sampler with the same sample count is reported as the
	// baseline: the protocol is good if the two are close.
	succ := trials - fails
	tv := 0.0
	for _, cnt := range counts {
		tv += math.Abs(float64(cnt)/float64(succ) - 1/float64(support))
	}
	tv += float64(support-len(counts)) / float64(support) // never-sampled mass
	tv /= 2
	ideal := rng.New(seed + 999)
	idealCounts := make([]int, support)
	for t := 0; t < succ; t++ {
		idealCounts[ideal.Intn(support)]++
	}
	tvIdeal := 0.0
	for _, cnt := range idealCounts {
		tvIdeal += math.Abs(float64(cnt)/float64(succ) - 1/float64(support))
	}
	tvIdeal /= 2
	row("support", "trials", "failures", "empirical TV", "perfect-sampler TV", "bits/sample")
	row(fi(int64(support)), fi(int64(trials)), fi(int64(fails)), f3(tv), f3(tvIdeal), fi(bits))
	fmt.Println("paper: each entry sampled w.p. (1±ε)/‖C‖0; Õ(n/ε²) bits, 1 round.")
	fmt.Println("(empirical TV should be close to the finite-sample baseline of a perfect sampler.)")
}

func runE5(seed uint64) {
	row("n", "bits", "bits/n", "rounds")
	for _, n := range []int{128, 256, 512} {
		a := absOf(workload.Integer(seed+8, n, n, 0.1, 3, false))
		b := absOf(workload.Integer(seed+9, n, n, 0.1, 3, false))
		_, _, _, cost, err := core.SampleL1(a, b, seed)
		if err != nil {
			panic(err)
		}
		row(fi(int64(n)), fi(cost.Bits), f1(float64(cost.Bits)/float64(n)), fi(int64(cost.Rounds)))
	}
	fmt.Println("paper: O(n log n) bits, 1 round, sample ∝ C[i][j].")
}

func runE6(seed uint64) {
	row("n", "truth ‖C‖∞", "estimate", "ratio", "bits", "bits/(n^1.5/ε)", "bits/n² (naive=1)")
	eps := 0.5
	for _, n := range []int{96, 192, 384} {
		a, b, _, _ := workload.PlantedPair(seed+uint64(n), n, n/3, 0.05)
		truth, _, _ := a.Mul(b).Linf()
		est, _, cost, err := core.EstimateLinfBinary(a, b, core.LinfOpts{Eps: eps, Seed: seed})
		if err != nil {
			panic(err)
		}
		row(fi(int64(n)), fi(truth), f1(est), f3(est/float64(truth)), fi(cost.Bits),
			f1(float64(cost.Bits)/(math.Pow(float64(n), 1.5)/eps)),
			f3(float64(cost.Bits)/float64(n*n)))
	}
	fmt.Println("paper: ratio within [1/(2+ε), 1+ε]; bits/(n^1.5/ε) roughly flat; below naive n².")
}

func runE7(seed uint64) {
	n := 256
	a, b, _, _ := workload.PlantedPair(seed+10, n, n/2, 0.1)
	truth, _, _ := a.Mul(b).Linf()
	row("kappa", "estimate", "ratio", "bits", "bits·κ/n^1.5")
	for _, kappa := range []float64{4, 8, 16, 32} {
		est, _, cost, err := core.EstimateLinfKappa(a, b,
			core.LinfKappaOpts{Kappa: kappa, AlphaC: 1, Seed: seed})
		if err != nil {
			panic(err)
		}
		row(f1(kappa), f1(est), f3(est/float64(truth)), fi(cost.Bits),
			f1(float64(cost.Bits)*kappa/math.Pow(float64(n), 1.5)))
	}
	fmt.Println("paper: ratio within κ; bits·κ/n^1.5 roughly flat (Õ(n^1.5/κ) total).")
}

func runE8(seed uint64) {
	n := 128
	a := workload.Integer(seed+11, n, n, 0.2, 4, true)
	b := workload.Integer(seed+12, n, n, 0.2, 4, true)
	a.Set(3, 0, 500)
	b.Set(0, 5, 500)
	truth, _, _ := a.Mul(b).Linf()
	row("kappa", "estimate", "ratio", "bits", "bits·κ²/n²")
	for _, kappa := range []float64{2, 4, 8} {
		est, cost, err := core.EstimateLinfGeneral(a, b, core.LinfGeneralOpts{Kappa: kappa, Seed: seed})
		if err != nil {
			panic(err)
		}
		row(f1(kappa), f1(est), f3(est/float64(truth)), fi(cost.Bits),
			f1(float64(cost.Bits)*kappa*kappa/float64(n*n)))
	}
	fmt.Println("paper: ratio within [1, κ]; bits·κ²/n² roughly flat (Θ̃(n²/κ²), optimal by Thm 4.8(2)).")
}

func runE9(seed uint64) {
	n := 128
	a, b := workload.PlantedHeavy(seed+13, n, 1, 80, 0.01)
	c := a.Mul(b)
	row("phi", "eps", "|HH_ϕ|", "|S| found", "precision ok", "recall ok", "bits")
	for _, phi := range []float64{0.2, 0.1} {
		eps := phi / 2
		out, cost, err := core.HeavyHitters(a, b, core.HHOpts{Phi: phi, Eps: eps, Seed: seed})
		if err != nil {
			panic(err)
		}
		must, may := hhSets(c, 1, phi, eps)
		prec, rec := hhQuality(out, must, may)
		row(f3(phi), f3(eps), fi(int64(len(must))), fi(int64(len(out))), boolStr(prec), boolStr(rec), fi(cost.Bits))
	}
	fmt.Println("paper: HH_ϕ ⊆ S ⊆ HH_{ϕ-ε}; Õ(√ϕ/ε·n) bits, O(1) rounds.")
}

func runE10(seed uint64) {
	row("n", "|HH_ϕ|", "|S| found", "precision ok", "recall ok", "bits", "bits/n")
	for _, n := range []int{96, 192} {
		ai, bi := workload.PlantedHeavy(seed+uint64(14+n), n, 1, n*3/4, 0.01)
		a, b := toBinary(ai), toBinary(bi)
		c := ai.Mul(bi)
		phi, eps := 0.1, 0.05
		out, cost, err := core.HeavyHittersBinary(a, b, core.HHBinaryOpts{Phi: phi, Eps: eps, Seed: seed})
		if err != nil {
			panic(err)
		}
		must, may := hhSets(c, 1, phi, eps)
		prec, rec := hhQuality(out, must, may)
		row(fi(int64(n)), fi(int64(len(must))), fi(int64(len(out))), boolStr(prec), boolStr(rec),
			fi(cost.Bits), f1(float64(cost.Bits)/float64(n)))
	}
	fmt.Println("paper: Õ(n + ϕ/ε²) bits — bits/n roughly flat in n.")
}

func runE11(seed uint64) {
	r := rng.New(seed + 15)
	n := 32
	okDisj := true
	for t := 0; t < 40; t++ {
		intersect := t%2 == 0
		d := lowerbound.NewDISJ(r, (n/2)*(n/2), intersect)
		a, b := lowerbound.EmbedDISJ(d, n)
		max, _, _ := a.Mul(b).Linf()
		if (intersect && max != 2) || (!intersect && max > 1) {
			okDisj = false
		}
	}
	okGap := true
	kappa := int64(16)
	for t := 0; t < 40; t++ {
		far := t%2 == 0
		g := lowerbound.NewGapLinf(r, (n/2)*(n/2), kappa, far)
		a, b := lowerbound.EmbedGapLinf(g, n)
		max, _, _ := a.Mul(b).Linf()
		if (far && max < kappa) || (!far && max > 1) {
			okGap = false
		}
	}
	okSum := true
	for t := 0; t < 40; t++ {
		inst := lowerbound.NewSUM(r, lowerbound.SUMParams{N: 128, Kappa: 2, BetaC: 2})
		if (inst.Sum() == 1) != inst.Planted {
			okSum = false
		}
	}
	row("gadget", "trials", "gap holds")
	row("DISJ → ℓ∞=2 vs ≤1 (Thm 4.4)", "40", boolStr(okDisj))
	row("Gap-ℓ∞ → ℓ∞≥κ vs ≤1 (Thm 4.8(2))", "40", boolStr(okGap))
	row("SUM ∈ {0,1} ⟺ planted (Thm 4.6)", "40", boolStr(okSum))
	fmt.Println("paper: the reductions hinge on exactly these gaps; the κ-gap of the SUM")
	fmt.Println("embedding additionally needs the n ≥ 200·κ·ln n regime (analytic, see DESIGN.md).")
}

func runE12(seed uint64) {
	n := 128
	row("‖AB‖0", "recovered", "bits", "bits/(n·√s)")
	for _, density := range []float64{0.01, 0.02, 0.04} {
		a := workload.Integer(seed+uint64(16+int(density*1000)), n, n, density, 3, false)
		b := workload.Integer(seed+uint64(17+int(density*1000)), n, n, density, 3, false)
		truth := a.Mul(b)
		s := truth.L0() + 1
		ca, cb, cost, err := core.DistributedProduct(a, b, core.MatMulOpts{Sparsity: s, Seed: seed})
		if err != nil {
			panic(err)
		}
		sum := ca.Clone()
		sum.AddMatrix(cb)
		status := "exact ✓"
		if !sum.Equal(truth) {
			status = "FAILED"
		}
		row(fi(int64(truth.L0())), status, fi(cost.Bits),
			f1(float64(cost.Bits)/(float64(n)*math.Sqrt(float64(s)))))
	}
	fmt.Println("paper: Õ(n·√‖AB‖0) bits, 2 rounds — bits/(n√s) roughly flat.")
}

func runE13(seed uint64) {
	a := workload.Integer(seed+18, 64, 256, 0.08, 2, false)
	b := workload.Integer(seed+19, 256, 128, 0.08, 2, false)
	truth := float64(a.Mul(b).L0())
	est, cost, err := core.EstimateLp(a, b, 0, core.LpOpts{Eps: 0.25, Seed: seed})
	if err != nil {
		panic(err)
	}
	row("case", "truth", "estimate", "rel err", "bits", "rounds")
	row("ℓ0 64×256·256×128", f1(truth), f1(est), fpct(relErr(est, truth)), fi(cost.Bits), fi(int64(cost.Rounds)))

	ab := workload.Binary(seed+20, 128, 64, 0.1)
	bb := workload.Binary(seed+21, 64, 128, 0.1)
	tl, _, _ := ab.Mul(bb).Linf()
	el, _, cl, err := core.EstimateLinfBinary(ab, bb, core.LinfOpts{Eps: 0.5, Seed: seed})
	if err != nil {
		panic(err)
	}
	row("ℓ∞ 128×64·64×128", fi(tl), f1(el), f3(el/float64(tl)), fi(cl.Bits), fi(int64(cl.Rounds)))
	fmt.Println("paper: ℓp cost stays Õ(n/ε) in the inner dimension; ℓ∞ becomes Õ(m^1.5).")
}

func runA1(seed uint64) {
	n := 256
	a, b, _, _ := workload.PlantedPair(seed+22, n, n/2, 0.15)
	o := core.LinfKappaOpts{Kappa: 24, AlphaC: 1, Seed: seed}
	_, _, with, err := core.EstimateLinfKappa(a, b, o)
	if err != nil {
		panic(err)
	}
	_, _, without, err := core.EstimateLinfKappaNoUniverse(a, b, o)
	if err != nil {
		panic(err)
	}
	row("variant", "bits")
	row("with universe sampling (Õ(n^1.5/κ))", fi(with.Bits))
	row("without (Õ(n^1.5/√κ))", fi(without.Bits))
	row("savings", f1(float64(without.Bits)/float64(with.Bits))+"×")
}

// Helpers shared by experiments.

func relErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / truth
}

func absOf(m *intmatDense) *intmatDense { return absMatrix(m) }

func boolStr(b bool) string {
	if b {
		return "✓"
	}
	return "✗"
}
