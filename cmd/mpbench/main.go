// Command mpbench regenerates the experiments recorded in EXPERIMENTS.md:
// for every table/claim in the paper's results (E1–E13 in DESIGN.md), it
// runs the corresponding protocol sweep, measures communication and
// accuracy against exact ground truth, and prints the table.
//
// Usage:
//
//	mpbench               # run everything
//	mpbench -experiment E1,E6
//	mpbench -seed 7       # change the base seed
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func(seed uint64)
}

func main() {
	expFlag := flag.String("experiment", "all", "comma-separated experiment ids (E1..E13, ablations) or 'all'")
	seed := flag.Uint64("seed", 1, "base seed for all workloads and protocols")
	flag.Parse()

	byID := map[string]experiment{}
	for _, e := range experiments {
		byID[strings.ToLower(e.id)] = e
	}

	var selected []experiment
	if *expFlag == "all" {
		selected = experiments
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := byID[strings.ToLower(strings.TrimSpace(id))]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", id)
				ids := make([]string, 0, len(byID))
				for k := range byID {
					ids = append(ids, k)
				}
				sort.Strings(ids)
				fmt.Fprintf(os.Stderr, " %s\n", strings.Join(ids, ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("\n=== %s — %s ===\n", e.id, e.title)
		e.run(*seed)
	}
}

// row prints an aligned table row.
func row(cells ...string) {
	for _, c := range cells {
		fmt.Printf("%-22s", c)
	}
	fmt.Println()
}

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func fi(v int64) string     { return fmt.Sprintf("%d", v) }
func fpct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
