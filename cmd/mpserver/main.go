// Command mpserver serves the two-party matrix-product estimation
// protocols over HTTP: upload Bob's matrix once, then run estimation
// queries against it. Every answer carries the protocol's exact
// communication cost (bits, rounds) under the paper's model.
//
//	mpserver -addr :8080 -workers 16 -transport inproc
//
// API (JSON):
//
//	PUT    /matrix/{name}   {"rows":512,"cols":512,"entries":[[i,j,v],...]}
//	POST   /estimate        {"matrix":"name","kind":"lp","p":1,"eps":0.25,"a":{...}}
//	GET    /matrices        served matrices
//	GET    /stats           aggregate serving statistics
//	GET    /metrics         Prometheus text exposition of the same telemetry
//	DELETE /matrix/{name}
//	GET    /healthz
//
// Kinds: lp, l0sample, l1sample, exact, linf, linfkappa, hh — see the
// service package for the protocol each runs.
//
// With -transport tcp every protocol execution crosses a real loopback
// socket through the comm.NetConn framing; the reported costs are
// identical to -transport inproc (the transport-parity tests pin this
// down), so the flag is a live demonstration that the protocol layer is
// transport-agnostic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/store"
	"repro/service"
)

// storeOrNil keeps Config.Store a true nil when no -data-dir is set —
// a nil *store.Disk boxed in the interface would read as "store
// configured" to the engine.
func storeOrNil(d *store.Disk) store.Store {
	if d == nil {
		return nil
	}
	return d
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 8, "max concurrent protocol executions")
	queue := flag.Int("queue", 64, "max queued jobs beyond the worker pool")
	maxMatrices := flag.Int("max-matrices", 16, "registry capacity (LRU eviction beyond it)")
	baseSeed := flag.Uint64("seed", 1, "base seed for server-assigned job seeds")
	transport := flag.String("transport", "inproc", "protocol transport: inproc | tcp (loopback socket per job)")
	cacheCap := flag.Int("cache-capacity", 64, "sketch-cache capacity (cached Bob-side states)")
	noCache := flag.Bool("no-cache", false, "disable the sketch cache (re-derive Bob's state per query)")
	seedRotate := flag.Int64("seed-rotate-every", 4096, "rotate the cache seed epoch after this many cached-path lookups (negative: never)")
	maxBatch := flag.Int("max-batch", 256, "max queries per /estimate/batch request")
	shards := flag.Int("shards", 0, "row shards per job on the parallel serve path (0 = min(GOMAXPROCS, 8), 1 = sequential; transcripts are identical for any value)")
	uploadTTL := flag.Duration("upload-ttl", 2*time.Minute, "idle partial chunked uploads are garbage-collected after this long")
	maxUploads := flag.Int("max-uploads", 16, "max concurrently staged chunked uploads")
	maxStaged := flag.Int64("max-staged-elems", 0, "total rows*cols budget across staged chunked uploads (0 = default 1<<25, ~256 MiB of staging)")
	dataDir := flag.String("data-dir", "", "durable store directory: served matrices are snapshotted and row updates WAL-logged there, and the server recovers them on boot (empty: in-memory only)")
	fsyncFlag := flag.String("fsync", "always", "durable store fsync policy: always | batch | never (with -data-dir)")
	snapshotEvery := flag.Int("snapshot-every", 64, "re-snapshot a matrix after this many WAL records and truncate the covered log (negative: never compact; with -data-dir)")
	flag.Parse()

	factory, ok := service.TransportByName(*transport)
	if !ok {
		log.Fatalf("unknown -transport %q (want inproc or tcp)", *transport)
	}
	var durable *store.Disk
	if *dataDir != "" {
		mode, err := store.ParseFsyncMode(*fsyncFlag)
		if err != nil {
			log.Fatalf("-fsync: %v", err)
		}
		durable, err = store.OpenDisk(store.DiskConfig{Dir: *dataDir, Fsync: mode})
		if err != nil {
			log.Fatalf("open -data-dir: %v", err)
		}
		defer durable.Close()
	}
	engine := service.NewEngine(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxMatrices:     *maxMatrices,
		BaseSeed:        *baseSeed,
		Transport:       factory,
		CacheCapacity:   *cacheCap,
		DisableCache:    *noCache,
		SeedRotateEvery: *seedRotate,
		MaxBatch:        *maxBatch,
		Shards:          *shards,
		UploadTTL:       *uploadTTL,
		MaxUploads:      *maxUploads,
		MaxStagedElems:  *maxStaged,
		Store:           storeOrNil(durable),
		SnapshotEvery:   *snapshotEvery,
	})
	defer engine.Close()
	if durable != nil {
		ps := engine.Stats().Store
		log.Printf("durable store %s (fsync=%s snapshot-every=%d): recovered %d matrices, replayed %d WAL records, %d recovery errors",
			*dataDir, *fsyncFlag, *snapshotEvery, ps.RecoveredMatrices, ps.ReplayedRecords, ps.RecoveryErrors)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	kinds := make([]string, 0, len(service.Kinds))
	for k := range service.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	log.Printf("mpserver listening on %s (workers=%d queue=%d max-matrices=%d transport=%s cache=%s shards=%d)",
		*addr, *workers, *queue, *maxMatrices, *transport,
		map[bool]string{true: "off", false: fmt.Sprintf("%d entries", *cacheCap)}[*noCache],
		engine.Stats().Shard.Shards)
	log.Printf("kinds: %v", kinds)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		log.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	st := engine.Stats()
	log.Printf("served %d requests (%d errors, %d rejected), %d protocol bits, p50=%v p99=%v",
		st.Requests, st.Errors, st.Rejected, st.TotalBits, st.LatencyP50, st.LatencyP99)
	log.Printf("shard pool: %d shards/job, %d parallel sections, %d tasks; chunked uploads: %d committed, %d expired",
		st.Shard.Shards, st.Shard.Jobs, st.Shard.Tasks, st.Uploads.Committed, st.Uploads.Expired)
	if !*noCache {
		log.Printf("sketch cache: %d hits, %d misses, %d entries (%d bytes), seed epoch %d",
			st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Cache.Bytes, st.Cache.SeedEpoch)
	}
}
