// Command mpestimate runs one protocol on a generated workload and
// prints the estimate, the exact answer, and the communication cost —
// a quick interactive way to explore the accuracy/communication
// tradeoffs.
//
// Usage examples:
//
//	mpestimate -protocol l0 -n 256 -eps 0.1
//	mpestimate -protocol linf -n 192 -workload planted
//	mpestimate -protocol hh -n 128 -phi 0.1
//	mpestimate -protocol matmul -n 128 -density 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	var (
		protocol = flag.String("protocol", "l0", "protocol: l0 | l1 | l2 | l1exact | l0sample | l1sample | linf | linfkappa | linfgeneral | hh | hhbinary | matmul | naive")
		n        = flag.Int("n", 128, "matrix dimension")
		density  = flag.Float64("density", 0.08, "workload density")
		wl       = flag.String("workload", "uniform", "workload: uniform | zipf | planted")
		eps      = flag.Float64("eps", 0.25, "accuracy parameter ε")
		kappa    = flag.Float64("kappa", 8, "approximation factor κ")
		phi      = flag.Float64("phi", 0.1, "heavy-hitter threshold ϕ")
		seed     = flag.Uint64("seed", 1, "seed")
		trace    = flag.Bool("trace", false, "print the per-message protocol trace")
	)
	flag.Parse()

	// Build the workload.
	var a, b *workloadBinary
	switch *wl {
	case "uniform":
		a = &workloadBinary{workload.Binary(*seed, *n, *n, *density)}
		b = &workloadBinary{workload.Binary(*seed+1, *n, *n, *density)}
	case "zipf":
		a = &workloadBinary{workload.Zipf(*seed, *n, *n, *n/2, 1.0)}
		b = &workloadBinary{workload.Zipf(*seed+1, *n, *n, *n/2, 1.0).Transpose()}
	case "planted":
		am, bm, _, _ := workload.PlantedPair(*seed, *n, *n/3, *density)
		a, b = &workloadBinary{am}, &workloadBinary{bm}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	ai, bi := a.m.ToInt(), b.m.ToInt()
	c := ai.Mul(bi)

	printTrace := func(cost core.Cost) {
		if !*trace {
			return
		}
		fmt.Println("trace:")
		for _, m := range cost.Trace {
			label := m.Label
			if label == "" {
				label = "(unlabeled)"
			}
			fmt.Printf("  round %d  %-10s %10d bits  %s\n", m.Round, m.Direction, m.Bits, label)
		}
	}

	report := func(name string, truth, est float64, cost core.Cost) {
		fmt.Printf("protocol:  %s\n", name)
		fmt.Printf("exact:     %.1f\n", truth)
		fmt.Printf("estimate:  %.1f\n", est)
		if truth != 0 {
			fmt.Printf("ratio:     %.4f\n", est/truth)
		}
		fmt.Printf("cost:      %s\n", cost)
		naive := int64(*n) * int64(*n)
		fmt.Printf("vs naive:  %.3f (naive ≈ %d bits: ship A as a bitmap)\n",
			float64(cost.Bits)/float64(naive), naive)
		printTrace(cost)
	}

	switch *protocol {
	case "l0", "l1", "l2":
		p := map[string]float64{"l0": 0, "l1": 1, "l2": 2}[*protocol]
		est, cost, err := core.EstimateLp(ai, bi, p, core.LpOpts{Eps: *eps, Seed: *seed})
		exitOn(err)
		report(fmt.Sprintf("Algorithm 1 (ℓ%v, Thm 3.1)", p), c.Lp(p), est, cost)
	case "l1exact":
		got, cost, err := core.ExactL1(ai, bi)
		exitOn(err)
		report("Remark 2 (exact ℓ1)", float64(c.L1()), float64(got), cost)
	case "l0sample":
		pair, v, cost, err := core.SampleL0(ai, bi, core.L0SampleOpts{Eps: *eps, Seed: *seed})
		exitOn(err)
		fmt.Printf("protocol:  Theorem 3.2 (ℓ0-sampling)\n")
		fmt.Printf("sampled:   C[%d][%d] = %d (support size %d)\n", pair.I, pair.J, v, c.L0())
		fmt.Printf("cost:      %s\n", cost)
	case "l1sample":
		i, j, k, cost, err := core.SampleL1(ai, bi, *seed)
		exitOn(err)
		fmt.Printf("protocol:  Remark 3 (ℓ1-sampling)\n")
		fmt.Printf("sampled:   entry (%d,%d) via witness %d, C value %d\n", i, j, k, c.Get(i, j))
		fmt.Printf("cost:      %s\n", cost)
	case "linf":
		truth, _, _ := c.Linf()
		est, pair, cost, err := core.EstimateLinfBinary(a.m, b.m, core.LinfOpts{Eps: *eps, Seed: *seed})
		exitOn(err)
		report("Algorithm 2 (ℓ∞ binary, Thm 4.1)", float64(truth), est, cost)
		fmt.Printf("witness:   (%d,%d) with true value %d\n", pair.I, pair.J, c.Get(pair.I, pair.J))
	case "linfkappa":
		truth, _, _ := c.Linf()
		est, _, cost, err := core.EstimateLinfKappa(a.m, b.m, core.LinfKappaOpts{Kappa: *kappa, Seed: *seed})
		exitOn(err)
		report(fmt.Sprintf("Algorithm 3 (ℓ∞ κ=%.0f, Thm 4.3)", *kappa), float64(truth), est, cost)
	case "linfgeneral":
		truth, _, _ := c.Linf()
		est, cost, err := core.EstimateLinfGeneral(ai, bi, core.LinfGeneralOpts{Kappa: *kappa, Seed: *seed})
		exitOn(err)
		report(fmt.Sprintf("Theorem 4.8(1) (ℓ∞ general, κ=%.0f)", *kappa), float64(truth), est, cost)
	case "hh":
		out, cost, err := core.HeavyHitters(ai, bi, core.HHOpts{Phi: *phi, Eps: *phi / 2, Seed: *seed})
		exitOn(err)
		fmt.Printf("protocol:  Algorithm 4 (heavy hitters, Thm 5.1)\n")
		printHH(out, c.Lp(1))
		fmt.Printf("cost:      %s\n", cost)
	case "hhbinary":
		out, cost, err := core.HeavyHittersBinary(a.m, b.m, core.HHBinaryOpts{Phi: *phi, Eps: *phi / 2, Seed: *seed})
		exitOn(err)
		fmt.Printf("protocol:  Section 5.2 (binary heavy hitters, Thm 5.3)\n")
		printHH(out, c.Lp(1))
		fmt.Printf("cost:      %s\n", cost)
	case "matmul":
		s := c.L0() + 1
		ca, cb, cost, err := core.DistributedProduct(ai, bi, core.MatMulOpts{Sparsity: s, Seed: *seed})
		exitOn(err)
		sum := ca.Clone()
		sum.AddMatrix(cb)
		status := "exact"
		if !sum.Equal(c) {
			status = "FAILED"
		}
		fmt.Printf("protocol:  Lemma 2.5 (distributed matmul)\n")
		fmt.Printf("recovery:  %s (‖AB‖0 = %d)\n", status, c.L0())
		fmt.Printf("cost:      %s\n", cost)
	case "naive":
		st, cost, err := core.NaiveBinary(a.m, b.m)
		exitOn(err)
		fmt.Printf("protocol:  naive (ship A)\n")
		fmt.Printf("exact:     ℓ0=%d ℓ1=%d ℓ∞=%d at (%d,%d)\n", st.L0, st.L1, st.Linf, st.ArgMax.I, st.ArgMax.J)
		fmt.Printf("cost:      %s\n", cost)
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
}

type workloadBinary struct{ m *bitmat.Matrix }

func printHH(out []core.WeightedPair, norm float64) {
	fmt.Printf("found:     %d heavy hitters\n", len(out))
	for _, wp := range out {
		fmt.Printf("           (%d,%d) ≈ %.1f (share %.3f)\n", wp.I, wp.J, wp.Value, wp.Value/norm)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
