// Join-size estimation for query optimization (Section 1.1 of the
// paper).
//
// A query optimizer choosing between executing R(X,Y) ⋈ S(Y,Z) via
// composition or via the full natural join needs cardinality estimates
// *before* moving any data: the natural join size ‖AB‖1 bounds the
// intermediate result, and the composition size ‖AB‖0 the distinct
// output pairs. Both are available cheaply — ‖AB‖1 exactly in O(n log n)
// bits (Remark 2) and ‖AB‖0 within (1±ε) in Õ(n/ε) bits (Theorem 3.1) —
// against relations stored on two different sites.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const n = 256
	rnd := rand.New(rand.NewSource(42))

	// Site 1 stores R(X, Y): a skewed relation — a few very frequent
	// join keys (the classic reason estimates beat heuristics).
	a := matprod.NewBoolMatrix(n, n)
	for i := 0; i < n; i++ {
		keys := 1 + rnd.Intn(8)
		for t := 0; t < keys; t++ {
			// Zipf-ish key popularity.
			k := int(float64(n) * rnd.Float64() * rnd.Float64())
			a.Set(i, k%n, true)
		}
	}
	// Site 2 stores S(Y, Z).
	b := matprod.NewBoolMatrix(n, n)
	for j := 0; j < n; j++ {
		keys := 1 + rnd.Intn(8)
		for t := 0; t < keys; t++ {
			k := int(float64(n) * rnd.Float64() * rnd.Float64())
			b.Set(k%n, j, true)
		}
	}

	exact := a.ToInt().Mul(b.ToInt())

	joinSize, joinCost, err := matprod.NaturalJoinSize(a, b)
	if err != nil {
		log.Fatal(err)
	}
	compSize, compCost, err := matprod.CompositionSize(a, b, matprod.LpOptions{Eps: 0.15, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("distributed cardinality estimates for R ⋈ S")
	fmt.Printf("  |R ⋈ S|  (‖AB‖1): %d exact  [true %d] — %s\n", joinSize, exact.L1(), joinCost)
	fmt.Printf("  |R ∘ S|  (‖AB‖0): %.0f ±15%%  [true %d] — %s\n", compSize, exact.L0(), compCost)

	// The optimizer's decision: if the join blows up relative to the
	// composition (many witnesses per pair), composing first and
	// deduplicating wins.
	blowup := float64(joinSize) / compSize
	fmt.Printf("  witnesses per output pair: %.2f\n", blowup)
	if blowup > 2 {
		fmt.Println("  plan: compose + deduplicate (join has heavy witness multiplicity)")
	} else {
		fmt.Println("  plan: direct natural join")
	}
}
