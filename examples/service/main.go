// The service example embeds the estimation engine in-process: a job
// board uploads its requirements matrix once, then answers several
// statistical questions about the applicant×job match matrix — each a
// two-party protocol execution with exact bit accounting, without a
// single full matrix transfer after the upload.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/service"
)

func main() {
	const applicants, jobs, skills = 400, 300, 128
	sc := workload.NewSkillsScenario(42, applicants, jobs, skills)

	engine := service.NewEngine(service.Config{Workers: 4})
	defer engine.Close()
	ctx := context.Background()

	// Bob (the job board) uploads his skills→jobs matrix once.
	info, _, err := engine.PutMatrix("jobs", service.MatrixFromBool(sc.Jobs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served matrix %q: %d×%d, %d non-zeros\n\n", info.Name, info.Rows, info.Cols, info.NNZ)

	// Alice (the applicant pool) queries it.
	a := service.MatrixFromBool(sc.Applicants)
	naiveBits := int64(applicants) * int64(skills) // shipping A outright

	queries := []struct {
		label string
		req   service.Request
	}{
		{"total match count ‖AB‖₁ (exact, Remark 2)",
			service.Request{Matrix: "jobs", Kind: "exact", A: a}},
		{"matching pairs ‖AB‖₀ (Algorithm 1, ε=0.3)",
			service.Request{Matrix: "jobs", Kind: "lp", P: 0, Eps: 0.3, A: a}},
		{"best applicant–job match ‖AB‖∞ (Algorithm 2, ε=0.5)",
			service.Request{Matrix: "jobs", Kind: "linf", Eps: 0.5, A: a}},
		{"a random matching pair, weighted by overlap (ℓ₁ sampling, Remark 3)",
			service.Request{Matrix: "jobs", Kind: "l1sample", A: a}},
		{"a uniformly random matching pair with exact overlap (ℓ₀ sampling, Theorem 3.2)",
			service.Request{Matrix: "jobs", Kind: "l0sample", Eps: 0.5, A: a}},
	}
	for _, q := range queries {
		res, err := engine.Estimate(ctx, q.req)
		if err != nil {
			log.Fatalf("%s: %v", q.label, err)
		}
		fmt.Printf("%s\n", q.label)
		switch q.req.Kind {
		case "l1sample":
			fmt.Printf("  applicant %d ↔ job %d (witness skill %d)\n", res.I, res.J, res.Witness)
		case "l0sample":
			fmt.Printf("  applicant %d ↔ job %d (%.0f shared skills)\n", res.I, res.J, res.Estimate)
		case "linf":
			fmt.Printf("  estimate %.0f at applicant %d, job %d\n", res.Estimate, res.I, res.J)
		default:
			fmt.Printf("  estimate %.0f\n", res.Estimate)
		}
		fmt.Printf("  cost: %d bits in %d rounds (naive transfer: %d bits)\n\n",
			res.Bits, res.Rounds, naiveBits)
	}

	st := engine.Stats()
	fmt.Printf("engine stats: %d requests, %d protocol bits, p99 latency %v\n",
		st.Requests, st.TotalBits, st.LatencyP99)
}
