// Uniform sampling of joining pairs (ℓ0-sampling, Theorem 3.2) and of
// join tuples (ℓ1-sampling, Remark 3).
//
// Sampling the output of a join without computing it is the standard
// building block for approximate query processing and for sketching
// dynamic graph/stream problems (the paper cites its use across the
// streaming literature). Here Alice and Bob hold the two sides of a
// bipartite "follows" relation and repeatedly sample random connected
// pairs — each sample costs one round and Õ(n/ε²) (ℓ0) or O(n log n)
// (ℓ1) bits, never materializing the product.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const n = 192
	rnd := rand.New(rand.NewSource(11))

	// A sparse bipartite structure: users → topics and topics → feeds.
	a := matprod.NewBoolMatrix(n, n)
	b := matprod.NewBoolMatrix(n, n)
	for i := 0; i < n; i++ {
		for t := 0; t < 4; t++ {
			a.Set(i, rnd.Intn(n), true)
			b.Set(rnd.Intn(n), i, true)
		}
	}
	c := a.ToInt().Mul(b.ToInt())
	fmt.Printf("product support: %d connected (user, feed) pairs, ‖AB‖1 = %d paths\n\n",
		c.L0(), c.L1())

	// ℓ0-samples: uniform over connected pairs.
	fmt.Println("uniform connected pairs (ℓ0-samples):")
	var l0Bits int64
	for s := 0; s < 5; s++ {
		pair, v, cost, err := matprod.RandomJoiningPair(a, b, matprod.L0SampleOptions{
			Eps: 0.25, Seed: uint64(100 + s),
		})
		if err != nil {
			log.Fatal(err)
		}
		l0Bits = cost.Bits
		fmt.Printf("  user %3d ↔ feed %3d (%d shared topics)\n", pair.I, pair.J, v)
	}
	fmt.Printf("  cost per sample: %d bits, 1 round\n\n", l0Bits)

	// ℓ1-samples: pairs weighted by path multiplicity, with the witness.
	fmt.Println("path-weighted samples with witness (ℓ1-samples):")
	for s := 0; s < 5; s++ {
		i, k, j, cost, err := matprod.RandomJoinTuple(a, b, uint64(200+s))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  user %3d → topic %3d → feed %3d  (%d bits)\n", i, k, j, cost.Bits)
	}
}
