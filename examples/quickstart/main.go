// Quickstart: estimate the size of a set-intersection join without
// moving the data.
//
// Alice holds n sets (rows of a Boolean matrix A), Bob holds n sets
// (columns of B). The number of pairs that intersect is exactly ‖AB‖0,
// and Algorithm 1 of the paper estimates it within (1±ε) in two rounds
// and Õ(n/ε) bits — far below shipping either side's data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const n = 256
	rnd := rand.New(rand.NewSource(7))

	// Alice's sets: each of n entities holds a sparse subset of [n].
	aliceSets := make([][]int, n)
	for i := range aliceSets {
		for j := 0; j < n; j++ {
			if rnd.Float64() < 0.06 {
				aliceSets[i] = append(aliceSets[i], j)
			}
		}
	}
	a := matprod.BoolMatrixFromSets(aliceSets, n)

	// Bob's sets, as columns of B (build rows, then transpose).
	bobSets := make([][]int, n)
	for j := range bobSets {
		for k := 0; k < n; k++ {
			if rnd.Float64() < 0.06 {
				bobSets[j] = append(bobSets[j], k)
			}
		}
	}
	b := matprod.BoolMatrixFromSets(bobSets, n).Transpose()

	// Exact answer (requires all data in one place — only for comparison).
	exact := a.ToInt().Mul(b.ToInt()).L0()

	// The distributed estimate.
	est, cost, err := matprod.CompositionSize(a, b, matprod.LpOptions{Eps: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("set-intersection join size (‖AB‖0)\n")
	fmt.Printf("  exact:     %d\n", exact)
	fmt.Printf("  estimated: %.0f  (ratio %.4f)\n", est, est/float64(exact))
	fmt.Printf("  cost:      %s\n", cost)
	fmt.Printf("  naive:     %d bits (shipping A)\n", n*n)
	fmt.Println()
	fmt.Println("note: the protocol's cost grows like Õ(n/ε) against the naive n²,")
	fmt.Println("so at toy sizes the sketch constants dominate; EXPERIMENTS.md (E1)")
	fmt.Println("records the measured linear-vs-quadratic scaling and the 1/ε-factor")
	fmt.Println("separation over the one-round baseline, which hold at every size.")
}
