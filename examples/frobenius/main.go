// Distributed Frobenius norm of a matrix product (the p = 2 case of
// Theorem 3.1).
//
// ‖AB‖F² is "a norm of fundamental importance in a variety of
// distributed linear algebra problems, such as low rank approximation"
// (paper, §1). Here Alice holds a tall feature matrix A and Bob a
// projection B; the Frobenius mass of A·B measures how much signal
// survives the projection, and comparing two candidate projections via
// two cheap (1±ε) estimates picks the better one without shipping A.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const (
		rows     = 192 // Alice's samples
		features = 128 // shared dimension
		dims     = 64  // Bob's projected dimensions
	)
	rnd := rand.New(rand.NewSource(21))

	// Alice: feature matrix with a strong low-dimensional component on
	// the first 16 features.
	a := matprod.NewIntMatrix(rows, features)
	for i := 0; i < rows; i++ {
		for j := 0; j < 16; j++ {
			a.Set(i, j, int64(rnd.Intn(9)-4)*3)
		}
		for j := 16; j < features; j++ {
			if rnd.Float64() < 0.1 {
				a.Set(i, j, int64(rnd.Intn(3)-1))
			}
		}
	}

	// Bob: two candidate projections — one aligned with the signal
	// block, one oblivious.
	aligned := matprod.NewIntMatrix(features, dims)
	oblivious := matprod.NewIntMatrix(features, dims)
	for d := 0; d < dims; d++ {
		aligned.Set(rnd.Intn(16), d, 1) // picks signal features
		oblivious.Set(16+rnd.Intn(features-16), d, 1)
	}

	estimate := func(b *matprod.IntMatrix, seed uint64) (float64, matprod.Cost) {
		est, cost, err := matprod.EstimateLp(a, b, 2, matprod.LpOptions{Eps: 0.2, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		return est, cost
	}

	estAligned, costAligned := estimate(aligned, 1)
	estOblivious, costOblivious := estimate(oblivious, 2)
	trueAligned := a.Mul(aligned).Lp(2)
	trueOblivious := a.Mul(oblivious).Lp(2)

	fmt.Println("captured Frobenius mass ‖A·B‖F² per candidate projection")
	fmt.Printf("  aligned:   est %.0f (true %.0f) — %s\n", estAligned, trueAligned, costAligned)
	fmt.Printf("  oblivious: est %.0f (true %.0f) — %s\n", estOblivious, trueOblivious, costOblivious)
	if estAligned > estOblivious {
		fmt.Println("  decision: keep the aligned projection (correct)")
	} else {
		fmt.Println("  decision: keep the oblivious projection")
	}
}
