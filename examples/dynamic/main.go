// Monitoring a join size over a changing relation (dynamic sketches).
//
// Every sketch in this repository is linear, so Bob can maintain his
// protocol state under a stream of insertions and deletions to B
// without storing B at all — the turnstile setting the paper's sketch
// toolbox comes from. Here a feed of updates flows into Bob's state
// and the composition size |A∘B| is re-estimated after each batch for
// the cost of one protocol round, with memory Õ(n/ε²) independent of
// the stream length.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/intmat"
	"repro/internal/stream"
)

func main() {
	const n, m2 = 128, 128
	rnd := rand.New(rand.NewSource(31))

	// Alice's (static) relation.
	a := intmat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if rnd.Float64() < 0.06 {
				a.Set(i, k, 1)
			}
		}
	}

	// Bob's evolving relation: sketches only, no stored matrix.
	bob := stream.NewDynamicJoin(1, n, m2, 0.4)
	shadow := intmat.NewDense(n, m2) // ground truth, for the demo only

	type update struct{ k, j int }
	var live []update
	for batch := 1; batch <= 4; batch++ {
		// Mixed workload: 300 insertions, and from batch 3 on, deletions.
		for u := 0; u < 300; u++ {
			k, j := rnd.Intn(n), rnd.Intn(m2)
			bob.Update(k, j, 1)
			shadow.Add(k, j, 1)
			live = append(live, update{k, j})
		}
		if batch >= 3 {
			for u := 0; u < 200 && len(live) > 0; u++ {
				idx := rnd.Intn(len(live))
				up := live[idx]
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				bob.Update(up.k, up.j, -1)
				shadow.Add(up.k, up.j, -1)
			}
		}
		est, stats, err := bob.EstimateJoinSize(a)
		if err != nil {
			log.Fatal(err)
		}
		truth := a.Mul(shadow).L0()
		fmt.Printf("batch %d: |A∘B| ≈ %6.0f (true %6d, ratio %.3f) — %d bits, %d round\n",
			batch, est, truth, est/float64(truth), stats.TotalBits(), stats.Rounds)
	}
}
