// The applicant–job matching scenario from Section 1.1 of the paper.
//
// A recruiting platform (Alice) holds each applicant's skill set; an
// employer consortium (Bob) holds each job's required skills. The pair
// (applicant, job) with the largest overlap is the entry realizing
// ‖AB‖∞ — found within a (2+ε) factor in Õ(n^1.5/ε) bits by
// Algorithm 2 — and all pairs whose overlap exceeds a threshold are the
// heavy hitters of AB, found in Õ(n + ϕ/ε²) bits by the Section 5.2
// protocol. Neither side reveals its full database.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	const (
		applicants = 300
		jobs       = 200
		skills     = 128
	)
	sc := workload.NewSkillsScenario(9, applicants, jobs, skills)
	a := wrapBool(sc.Applicants)
	b := wrapBool(sc.Jobs)

	exact := a.ToInt().Mul(b.ToInt())
	trueMax, trueArg := exact.Linf()

	// Best single match.
	est, pair, cost, err := matprod.MaxOverlapPair(a, b, matprod.LinfOptions{Eps: 0.5, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best applicant–job match (ℓ∞ of AB, Algorithm 2)")
	fmt.Printf("  reported: applicant %d ↔ job %d, overlap ≥ %.0f skills\n", pair.I, pair.J, est)
	fmt.Printf("  true:     applicant %d ↔ job %d, overlap %d skills\n", trueArg.I, trueArg.J, trueMax)
	fmt.Printf("  cost:     %s (naive: %d bits)\n\n", cost, applicants*skills)

	// All strong matches: overlaps above ϕ·‖AB‖1. The demo targets "at
	// least 80% of the best overlap", translated into the protocol's
	// relative threshold using the (known-for-demo) total mass.
	phi := 0.8 * float64(trueMax) / float64(exact.L1())
	matches, hhCost, err := matprod.OverlapsAboveThreshold(a, b, matprod.HHBinaryOptions{
		Phi: phi, Eps: phi / 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strong matches (ℓ1 heavy hitters, ϕ = %.4f)\n", phi)
	for _, m := range matches {
		fmt.Printf("  applicant %3d ↔ job %3d: overlap ≈ %.0f (true %d)\n",
			m.I, m.J, m.Value, exact.Get(m.I, m.J))
	}
	fmt.Printf("  cost: %s\n", hhCost)
}

// wrapBool copies an internal bit matrix into the public type (examples
// normally build their own matrices; this one reuses the workload
// generator's scenario).
func wrapBool(m interface {
	Rows() int
	Cols() int
	Get(i, j int) bool
}) *matprod.BoolMatrix {
	out := matprod.NewBoolMatrix(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.Get(i, j) {
				out.Set(i, j, true)
			}
		}
	}
	return out
}
