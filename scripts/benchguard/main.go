// Command benchguard is the CI bench-regression guard: it parses `go
// test -bench` output, emits a machine-readable JSON summary (the
// BENCH_ci.json CI artifact), and fails when a guarded benchmark's
// ns/op exceeds max-ratio × its checked-in baseline.
//
//	go test -bench='...' -benchtime=3x -run '^$' . | tee bench.txt
//	go run ./scripts/benchguard -in bench.txt -out BENCH_ci.json \
//	    -baseline ci/bench_baseline.json -max-ratio 2
//
// The baseline file maps benchmark names (GOMAXPROCS suffix stripped,
// e.g. "ServiceLpCachedVsUncached/cached") to baseline ns/op. Baselines
// are hardware-dependent; they are calibrated for the CI runner class
// with enough headroom that only a genuine regression — not runner
// noise — crosses the 2× line. A guarded benchmark missing from the
// input is also a failure, so a renamed benchmark cannot silently
// disable its guard.
//
// An "allocs_per_op" map in the baseline additionally gates allocs/op
// (the codec hot path's allocation budget); those entries require the
// bench run to pass -benchmem, and a missing allocs/op metric fails
// the gate rather than skipping it.
//
// It also gates the open-loop capacity model: with -loadcurve pointing
// at a BENCH_loadcurve.json (emitted by mpload -rps-sweep) and
// -loadcurve-baseline at the checked-in reference, the guard fails
// when the fitted USL knee — or the fitted peak model throughput —
// regresses by more than -knee-max-regress versus the baseline:
//
//	go run ./scripts/benchguard -loadcurve BENCH_loadcurve.json \
//	    -loadcurve-baseline ci/loadcurve_baseline.json
//
// A sweep whose fit finds no knee inside the observed range passes the
// knee half of the gate (capacity is at least what the sweep reached;
// a contention-saturated but non-retrograde curve fits κ≈0 and has no
// knee) — the peak-throughput half still bites there. A sweep whose
// fit failed outright fails the gate. -in may be omitted when only the
// loadcurve gate runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/loadcurve"
)

// benchLine matches one result line of go test -bench output, e.g.
//
//	BenchmarkServiceLpCachedVsUncached/cached-4   3   3128615 ns/op   2892160 bits/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// extraMetric matches trailing "value unit" metric pairs after ns/op.
var extraMetric = regexp.MustCompile(`([\d.]+) (\S+)`)

// Result is one parsed benchmark result.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the checked-in reference the guard compares against.
type Baseline struct {
	// NsPerOp maps benchmark names (no -N suffix) to baseline ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp maps benchmark names to baseline allocs/op. These
	// entries require the bench run to pass -benchmem; a guarded
	// benchmark whose output lacks the allocs/op metric fails, so the
	// gate cannot be disabled by dropping the flag.
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
}

// Report is the BENCH_ci.json artifact.
type Report struct {
	Results []Result `json:"results"`
	// Guarded records the guard verdict per baselined benchmark.
	Guarded []GuardVerdict `json:"guarded"`
	// Loadcurve records the capacity-knee gate verdict when it ran.
	Loadcurve *KneeVerdict `json:"loadcurve,omitempty"`
}

// KneeBaseline is the checked-in capacity reference
// (ci/loadcurve_baseline.json): the fitted USL knee and peak model
// throughput of a healthy build on the CI runner class, in RPS. Either
// field may be zero to skip that half of the gate — a saturating (but
// non-retrograde) serve path fits κ≈0 and reports no knee, so peak_rps
// is the check that still bites there.
type KneeBaseline struct {
	KneeRPS float64 `json:"knee_rps"`
	PeakRPS float64 `json:"peak_rps"`
}

// KneeVerdict is the capacity-gate outcome.
type KneeVerdict struct {
	// KneeRPS is the sweep's fitted knee (0 when HasKnee is false).
	KneeRPS float64 `json:"knee_rps"`
	// HasKnee mirrors the fit: false means no peak inside the swept
	// range, which passes the knee half of the gate (capacity is at
	// least what the sweep reached).
	HasKnee bool `json:"has_knee"`
	// PeakRPS is the sweep's peak model throughput.
	PeakRPS float64 `json:"peak_rps"`
	// BaselineRPS is the checked-in reference knee.
	BaselineRPS float64 `json:"baseline_knee_rps"`
	// BaselinePeakRPS is the checked-in reference peak throughput.
	BaselinePeakRPS float64 `json:"baseline_peak_rps,omitempty"`
	// Ratio is BaselineRPS / KneeRPS (how many times the knee shrank).
	Ratio float64 `json:"ratio"`
	Pass  bool    `json:"pass"`
	Note  string  `json:"note,omitempty"`
}

// GuardVerdict is one guarded benchmark's comparison outcome. Metric
// distinguishes the ns/op gate (empty, the default) from extra-metric
// gates such as allocs/op.
type GuardVerdict struct {
	Name       string  `json:"name"`
	Metric     string  `json:"metric,omitempty"`
	NsPerOp    float64 `json:"ns_per_op"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	Ratio      float64 `json:"ratio"`
	Pass       bool    `json:"pass"`
}

func main() {
	in := flag.String("in", "", "go test -bench output to parse (required unless only -loadcurve runs)")
	out := flag.String("out", "BENCH_ci.json", "JSON summary artifact to write")
	baselinePath := flag.String("baseline", "", "checked-in baseline JSON; empty skips the guard")
	maxRatio := flag.Float64("max-ratio", 2, "fail when ns/op exceeds this multiple of the baseline")
	loadcurvePath := flag.String("loadcurve", "", "BENCH_loadcurve.json from mpload -rps-sweep; empty skips the capacity gate")
	loadcurveBase := flag.String("loadcurve-baseline", "", "checked-in capacity baseline (knee_rps / peak_rps); required with -loadcurve")
	kneeMaxRegress := flag.Float64("knee-max-regress", 2, "fail when the fitted knee or peak throughput shrinks by more than this factor vs the baseline")
	flag.Parse()

	if *in == "" && *loadcurvePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -in or -loadcurve is required")
		os.Exit(2)
	}
	var report Report
	if *in != "" {
		results, err := parseBench(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		report.Results = results
	}

	failed := false
	if *loadcurvePath != "" {
		verdict, err := gateLoadcurve(*loadcurvePath, *loadcurveBase, *kneeMaxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		report.Loadcurve = verdict
		status := "ok"
		if !verdict.Pass {
			status = "REGRESSION"
			failed = true
		}
		knee := "none in range"
		if verdict.HasKnee {
			knee = fmt.Sprintf("%.0f rps", verdict.KneeRPS)
		}
		fmt.Printf("benchguard: capacity knee %s (baseline %.0f rps)  peak %.0f rps (baseline %.0f)  %s  %s\n",
			knee, verdict.BaselineRPS, verdict.PeakRPS, verdict.BaselinePeakRPS, status, verdict.Note)
	}
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		byName := make(map[string]Result, len(report.Results))
		for _, r := range report.Results {
			byName[r.Name] = r
		}
		for name, baseNs := range base.NsPerOp {
			full := "Benchmark" + name
			r, ok := byName[full]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: guarded benchmark %s missing from %s\n", full, *in)
				failed = true
				continue
			}
			v := GuardVerdict{
				Name:       name,
				NsPerOp:    r.NsPerOp,
				BaselineNs: baseNs,
				Ratio:      r.NsPerOp / baseNs,
				Pass:       r.NsPerOp <= *maxRatio*baseNs,
			}
			report.Guarded = append(report.Guarded, v)
			status := "ok"
			if !v.Pass {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("benchguard: %-45s %12.0f ns/op  baseline %12.0f  ratio %.2f  %s\n",
				name, v.NsPerOp, v.BaselineNs, v.Ratio, status)
		}
		for name, baseAllocs := range base.AllocsPerOp {
			full := "Benchmark" + name
			r, ok := byName[full]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: guarded benchmark %s missing from %s\n", full, *in)
				failed = true
				continue
			}
			allocs, ok := r.Metrics["allocs/op"]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: %s has no allocs/op metric (run with -benchmem)\n", full)
				failed = true
				continue
			}
			v := GuardVerdict{
				Name:       name,
				Metric:     "allocs/op",
				NsPerOp:    allocs,
				BaselineNs: baseAllocs,
				Ratio:      allocs / baseAllocs,
				Pass:       allocs <= *maxRatio*baseAllocs,
			}
			report.Guarded = append(report.Guarded, v)
			status := "ok"
			if !v.Pass {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("benchguard: %-45s %12.0f allocs/op  baseline %9.0f  ratio %.2f  %s\n",
				name, allocs, baseAllocs, v.Ratio, status)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: bench regression guard failed (see %s)\n", *out)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d results parsed, %d guarded, wrote %s\n",
		len(report.Results), len(report.Guarded), *out)
}

// gateLoadcurve compares a sweep's fitted knee against the checked-in
// capacity baseline.
func gateLoadcurve(curvePath, basePath string, maxRegress float64) (*KneeVerdict, error) {
	if basePath == "" {
		return nil, fmt.Errorf("-loadcurve-baseline is required with -loadcurve")
	}
	rawCurve, err := os.ReadFile(curvePath)
	if err != nil {
		return nil, err
	}
	var rep loadcurve.Report
	if err := json.Unmarshal(rawCurve, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", curvePath, err)
	}
	if rep.Schema != loadcurve.SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, want %d", curvePath, rep.Schema, loadcurve.SchemaVersion)
	}
	rawBase, err := os.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	var base KneeBaseline
	if err := json.Unmarshal(rawBase, &base); err != nil {
		return nil, fmt.Errorf("parse %s: %w", basePath, err)
	}
	if base.KneeRPS <= 0 && base.PeakRPS <= 0 {
		return nil, fmt.Errorf("%s: knee_rps or peak_rps must be positive", basePath)
	}
	if rep.Fit == nil {
		// The sweep ran but could not be modeled — a broken sweep must
		// not pass silently.
		return &KneeVerdict{BaselineRPS: base.KneeRPS, BaselinePeakRPS: base.PeakRPS,
			Pass: false, Note: fmt.Sprintf("sweep has no fit: %s", rep.FitError)}, nil
	}
	v := &KneeVerdict{
		KneeRPS:         rep.Fit.KneeRPS,
		HasKnee:         rep.Fit.HasKnee,
		PeakRPS:         rep.Fit.PeakThroughputRPS,
		BaselineRPS:     base.KneeRPS,
		BaselinePeakRPS: base.PeakRPS,
		Pass:            true,
	}
	var notes []string
	if base.KneeRPS > 0 {
		if !rep.Fit.HasKnee {
			// No peak inside (10× of) the swept range: capacity is at
			// least what the sweep reached, which cannot be a
			// >maxRegress collapse of the knee.
			notes = append(notes, "no knee within swept range")
		} else {
			v.Ratio = base.KneeRPS / rep.Fit.KneeRPS
			if rep.Fit.KneeRPS*maxRegress < base.KneeRPS {
				v.Pass = false
				notes = append(notes, fmt.Sprintf("knee shrank %.1f× (limit %.1f×)", v.Ratio, maxRegress))
			}
		}
	}
	if base.PeakRPS > 0 && v.PeakRPS*maxRegress < base.PeakRPS {
		v.Pass = false
		notes = append(notes, fmt.Sprintf("peak throughput shrank %.1f× (limit %.1f×)",
			base.PeakRPS/v.PeakRPS, maxRegress))
	}
	v.Note = strings.Join(notes, "; ")
	return v, nil
}

func parseBench(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, em := range extraMetric.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(em[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[em[2]] = v
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found in %s", path)
	}
	return out, nil
}

func loadBaseline(path string) (Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return Baseline{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(b.NsPerOp) == 0 && len(b.AllocsPerOp) == 0 {
		return Baseline{}, fmt.Errorf("%s guards no benchmarks", path)
	}
	return b, nil
}
