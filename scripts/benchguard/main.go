// Command benchguard is the CI bench-regression guard: it parses `go
// test -bench` output, emits a machine-readable JSON summary (the
// BENCH_ci.json CI artifact), and fails when a guarded benchmark's
// ns/op exceeds max-ratio × its checked-in baseline.
//
//	go test -bench='...' -benchtime=3x -run '^$' . | tee bench.txt
//	go run ./scripts/benchguard -in bench.txt -out BENCH_ci.json \
//	    -baseline ci/bench_baseline.json -max-ratio 2
//
// The baseline file maps benchmark names (GOMAXPROCS suffix stripped,
// e.g. "ServiceLpCachedVsUncached/cached") to baseline ns/op. Baselines
// are hardware-dependent; they are calibrated for the CI runner class
// with enough headroom that only a genuine regression — not runner
// noise — crosses the 2× line. A guarded benchmark missing from the
// input is also a failure, so a renamed benchmark cannot silently
// disable its guard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one result line of go test -bench output, e.g.
//
//	BenchmarkServiceLpCachedVsUncached/cached-4   3   3128615 ns/op   2892160 bits/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// extraMetric matches trailing "value unit" metric pairs after ns/op.
var extraMetric = regexp.MustCompile(`([\d.]+) (\S+)`)

// Result is one parsed benchmark result.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the checked-in reference the guard compares against.
type Baseline struct {
	// NsPerOp maps benchmark names (no -N suffix) to baseline ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// Report is the BENCH_ci.json artifact.
type Report struct {
	Results []Result `json:"results"`
	// Guarded records the guard verdict per baselined benchmark.
	Guarded []GuardVerdict `json:"guarded"`
}

// GuardVerdict is one guarded benchmark's comparison outcome.
type GuardVerdict struct {
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	Ratio      float64 `json:"ratio"`
	Pass       bool    `json:"pass"`
}

func main() {
	in := flag.String("in", "", "go test -bench output to parse (required)")
	out := flag.String("out", "BENCH_ci.json", "JSON summary artifact to write")
	baselinePath := flag.String("baseline", "", "checked-in baseline JSON; empty skips the guard")
	maxRatio := flag.Float64("max-ratio", 2, "fail when ns/op exceeds this multiple of the baseline")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -in is required")
		os.Exit(2)
	}
	results, err := parseBench(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	report := Report{Results: results}

	failed := false
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		byName := make(map[string]Result, len(results))
		for _, r := range results {
			byName[r.Name] = r
		}
		for name, baseNs := range base.NsPerOp {
			full := "Benchmark" + name
			r, ok := byName[full]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: guarded benchmark %s missing from %s\n", full, *in)
				failed = true
				continue
			}
			v := GuardVerdict{
				Name:       name,
				NsPerOp:    r.NsPerOp,
				BaselineNs: baseNs,
				Ratio:      r.NsPerOp / baseNs,
				Pass:       r.NsPerOp <= *maxRatio*baseNs,
			}
			report.Guarded = append(report.Guarded, v)
			status := "ok"
			if !v.Pass {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("benchguard: %-45s %12.0f ns/op  baseline %12.0f  ratio %.2f  %s\n",
				name, v.NsPerOp, v.BaselineNs, v.Ratio, status)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: bench regression guard failed (see %s)\n", *out)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d results parsed, %d guarded, wrote %s\n",
		len(report.Results), len(report.Guarded), *out)
}

func parseBench(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, em := range extraMetric.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(em[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[em[2]] = v
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found in %s", path)
	}
	return out, nil
}

func loadBaseline(path string) (Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return Baseline{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(b.NsPerOp) == 0 {
		return Baseline{}, fmt.Errorf("%s guards no benchmarks", path)
	}
	return b, nil
}
