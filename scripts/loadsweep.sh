#!/usr/bin/env bash
# loadsweep.sh — short open-loop capacity sweep with a knee-regression gate.
#
# Builds mpserver and mpload, starts a server, drives an open-loop
# -rps-sweep of a cached repeat-query lp workload against it, writes the
# sweep points and USL fit to BENCH_loadcurve.json, and gates the fitted
# capacity knee against ci/loadcurve_baseline.json via scripts/benchguard
# (fail when the knee regresses more than 2x below baseline).
#
# The defaults are sized for CI: ~5s per step, rates spanning well past
# the knee on a small runner. Override via env:
#
#   RATES=50,100,200 MEASURE=10s scripts/loadsweep.sh
#
# Recalibrate ci/loadcurve_baseline.json deliberately (run this script on
# the CI runner class, take the reported knee with ~2x headroom) whenever
# the serve path changes capacity on purpose.
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

RATES="${RATES:-100,200,400,800,1600}"
N="${N:-256}"
WARMUP="${WARMUP:-1s}"
MEASURE="${MEASURE:-4s}"
TIMEOUT="${TIMEOUT:-2s}"
OUT="${OUT:-BENCH_loadcurve.json}"
BASELINE="${BASELINE:-ci/loadcurve_baseline.json}"
PORT="${PORT:-18080}"

bin=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then
    kill "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/mpserver" ./cmd/mpserver
go build -o "$bin/mpload" ./cmd/mpload

"$bin/mpserver" -addr "127.0.0.1:$PORT" &
server_pid=$!

up=""
for _ in $(seq 1 100); do
  if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.1
done
if [ -z "$up" ]; then
  echo "mpserver did not become healthy on port $PORT" >&2
  exit 1
fi

# Cached repeat-query lp workload: -pin-seed keeps every query on the
# sketch-cache fast path, so the sweep measures serve capacity rather
# than per-query sketch derivation.
"$bin/mpload" \
  -addr "http://127.0.0.1:$PORT" \
  -n "$N" -mix lp=1 -pin-seed 7 \
  -rps-sweep "$RATES" -arrivals poisson \
  -warmup "$WARMUP" -measure "$MEASURE" -timeout "$TIMEOUT" \
  -report-interval 0 \
  -loadcurve-out "$OUT"

go run ./scripts/benchguard \
  -loadcurve "$OUT" \
  -loadcurve-baseline "$BASELINE" \
  -knee-max-regress 2 \
  -out BENCH_ci_loadcurve.json
