#!/usr/bin/env bash
# asyncsweep.sh — sync-vs-async replication sweep + SLA frontier.
#
# Builds mpserver, mpgateway, and mpload, starts three backends, and
# drives the same closed-loop update-bearing mix twice through a
# replication-3 gateway front: once committing synchronously on every
# replica, once committing on a single-ack write quorum (-async
# -write-quorum 1) with the background apply loop draining the rest.
# The async pass sweeps every consistency level (-sla-sweep) so its
# BENCH_slacurve.json is the measured latency-vs-staleness frontier;
# the sync pass runs the strong level only — the one level whose
# semantics both modes share — for an apples-to-apples write-throughput
# comparison, summarized into BENCH_asyncsweep.json.
#
# The job fails when either mode sheds update errors or when the async
# fleet fails to sustain at least the sync fleet's update throughput
# (the deterministic ≥2x separation with a slow replica is pinned by
# TestAsyncThroughputBeatsSyncWithSlowReplica and the
# GatewayUpdateReplicated bench baseline; live local backends are too
# fast to gate a fixed ratio without flakes). Override knobs via env:
#
#   MIX=lp=1,update=8 DURATION=10s scripts/asyncsweep.sh
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

MIX="${MIX:-lp=2,update=4}"
N="${N:-128}"
WORKERS="${WORKERS:-8}"
DURATION="${DURATION:-4s}"
LEVELS="${LEVELS:-eventual,monotonic,rmw,bounded:250ms,strong}"
PORT_BASE="${PORT_BASE:-18190}"

bin=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/mpserver" ./cmd/mpserver
go build -o "$bin/mpgateway" ./cmd/mpgateway
go build -o "$bin/mpload" ./cmd/mpload

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "no healthy listener on port $1" >&2
  return 1
}

backends=""
for i in 1 2 3; do
  port=$((PORT_BASE + i))
  "$bin/mpserver" -addr "127.0.0.1:$port" &
  pids+=("$!")
  backends="$backends,http://127.0.0.1:$port"
done
backends="${backends#,}"
for i in 1 2 3; do
  wait_healthy $((PORT_BASE + i))
done

# run_mode <matrix> <slacurve-out> <levels> [extra gateway flags...]
run_mode() {
  local matrix="$1" out="$2" levels="$3"
  shift 3
  "$bin/mpgateway" -addr "127.0.0.1:$PORT_BASE" -backends "$backends" \
    -replication 3 -probe-interval 250ms "$@" &
  local gw=$!
  pids+=("$gw")
  wait_healthy "$PORT_BASE"
  "$bin/mpload" -gateway -addr "http://127.0.0.1:$PORT_BASE" \
    -n "$N" -matrix "$matrix" -mix "$MIX" \
    -workers "$WORKERS" -duration "$DURATION" \
    -report-interval 0 \
    -sla-sweep "$levels" -slacurve-out "$out"
  kill "$gw" 2>/dev/null || true
  wait "$gw" 2>/dev/null || true
}

run_mode bench_sync BENCH_slacurve_sync.json strong
run_mode bench_async BENCH_slacurve.json "$LEVELS" -async -write-quorum 1

# Summarize the strong-level update throughput of both modes. The sync
# document has exactly one point; the async document's strong point is
# its last.
jq -n \
  --slurpfile sync BENCH_slacurve_sync.json \
  --slurpfile async BENCH_slacurve.json \
  --arg mix "$MIX" --arg duration "$DURATION" '
  ($sync[0].points[] | select(.level == "strong")) as $s |
  ($async[0].points[] | select(.level == "strong")) as $a |
  ($duration | rtrimstr("s") | tonumber) as $secs |
  {
    mix: $mix,
    duration: $duration,
    sync:  {updates: $s.updates, update_errors: $s.update_errors,
            updates_per_sec: (($s.updates - $s.update_errors) / $secs),
            read_p50_ms: $s.p50_ms, read_p99_ms: $s.p99_ms},
    async: {updates: $a.updates, update_errors: $a.update_errors,
            updates_per_sec: (($a.updates - $a.update_errors) / $secs),
            read_p50_ms: $a.p50_ms, read_p99_ms: $a.p99_ms},
  } | .ratio = (.async.updates_per_sec / ([.sync.updates_per_sec, 0.001] | max))
' >BENCH_asyncsweep.json

cat BENCH_asyncsweep.json

jq -e '
  .sync.update_errors == 0 and .async.update_errors == 0 and
  .sync.updates > 0 and .async.updates > 0 and .ratio >= 1.0
' BENCH_asyncsweep.json >/dev/null || {
  echo "async sweep gate failed: update errors, or async throughput below sync" >&2
  exit 1
}
