package matprod

// This file provides the database-facing convenience layer from the
// paper's Section 1.1: compositions (set-intersection joins), natural
// joins, and their size estimates, phrased over set families rather than
// matrices.

// CompositionSize estimates |A∘B| = ‖AB‖0, the number of pairs (i, j)
// with A_i ∩ B_j ≠ ∅ (the set-intersection join size), within (1±ε)
// using Algorithm 1 with p = 0: two rounds and Õ(n/ε) bits.
func CompositionSize(a, b *BoolMatrix, o LpOptions) (float64, Cost, error) {
	return EstimateLp(a.ToInt(), b.ToInt(), 0, o)
}

// NaturalJoinSize computes |A⋈B| = ‖AB‖1, the natural-join size,
// exactly in O(n log n) bits and one round (Remark 2).
func NaturalJoinSize(a, b *BoolMatrix) (int64, Cost, error) {
	return ExactL1(a.ToInt(), b.ToInt())
}

// MaxOverlapPair approximates the pair of sets with the largest
// intersection (the entry realizing ‖AB‖∞) within a (2+ε) factor in
// Õ(n^1.5/ε) bits (Algorithm 2). The returned pair witnesses at least
// the returned estimate.
func MaxOverlapPair(a, b *BoolMatrix, o LinfOptions) (float64, Pair, Cost, error) {
	return EstimateLinf(a, b, o)
}

// OverlapsAboveThreshold returns (approximately) the pairs whose
// intersection size is at least ϕ·‖AB‖1 — the ℓ1-heavy-hitters of the
// join (Theorem 5.3), in Õ(n + ϕ/ε²) bits.
func OverlapsAboveThreshold(a, b *BoolMatrix, o HHBinaryOptions) ([]WeightedPair, Cost, error) {
	return HeavyHittersBinary(a, b, o)
}

// PairsWithOverlapAtLeast approximately returns the pairs (i, j) with
// |A_i ∩ B_j| ≥ threshold — the "at-least-T join" of [16], answered
// here through the heavy-hitter machinery: the absolute threshold is
// converted to a relative ϕ against the exact join size ‖AB‖1
// (Remark 2, O(n log n) bits) and handed to the Theorem 5.3 protocol.
// Pairs with overlap in [threshold/2, threshold) may also appear
// (the protocol's ε = ϕ/2 slack); pairs at or above threshold are
// found with constant probability.
func PairsWithOverlapAtLeast(a, b *BoolMatrix, threshold int64, seed uint64) ([]WeightedPair, Cost, error) {
	if threshold < 1 {
		return nil, Cost{}, ErrBadPhi
	}
	total, c1, err := ExactL1(a.ToInt(), b.ToInt())
	if err != nil {
		return nil, Cost{}, err
	}
	if total == 0 || threshold > total {
		return nil, c1, nil
	}
	phi := float64(threshold) / float64(total)
	if phi > 1 {
		return nil, c1, nil
	}
	out, c2, err := HeavyHittersBinary(a, b, HHBinaryOptions{Phi: phi, Eps: phi / 2, Seed: seed})
	if err != nil {
		return nil, Cost{}, err
	}
	cost := Cost{Bits: c1.Bits + c2.Bits, Rounds: c1.Rounds + c2.Rounds}
	return out, cost, nil
}

// RandomJoiningPair samples a uniformly random pair (i, j) with
// A_i ∩ B_j ≠ ∅ (an ℓ0-sample of AB, Theorem 3.2) and returns the exact
// intersection size of the sampled pair.
func RandomJoiningPair(a, b *BoolMatrix, o L0SampleOptions) (Pair, int64, Cost, error) {
	return SampleL0(a.ToInt(), b.ToInt(), o)
}

// RandomJoinTuple samples a uniformly random tuple (i, k, j) of the
// natural join A⋈B — pair (i, j) with witness k — via ℓ1-sampling
// (Remark 3), in O(n log n) bits.
func RandomJoinTuple(a, b *BoolMatrix, seed uint64) (i, witness, j int, cost Cost, err error) {
	pi, pj, pk, cost, err := SampleL1(a.ToInt(), b.ToInt(), seed)
	return pi, pk, pj, cost, err
}
