// Package matprod is a Go implementation of the two-party matrix-product
// estimation protocols of Woodruff & Zhang, "Distributed Statistical
// Estimation of Matrix Products with Applications" (PODS 2018).
//
// Alice holds a matrix A, Bob holds a matrix B, and the two estimate
// statistics of the product C = A·B while exchanging as few bits as
// possible. In database terms, with rows of A and columns of B as sets,
//
//   - ‖AB‖0 is the size of the composition A∘B (set-intersection join),
//   - ‖AB‖1 is the size of the natural join A⋈B,
//   - ‖AB‖∞ is the maximum intersection size over all pairs,
//   - the ℓp-(ϕ,ε)-heavy-hitters are the pairs whose intersection
//     exceeds a threshold, and
//   - ℓ0/ℓ1-sampling draws a random joining pair.
//
// Every protocol is implemented once, as a pair of transport-agnostic
// party drivers; the calls below run both drivers over an in-process
// two-party runtime that accounts exact bits and rounds, so each call
// returns its estimate together with a Cost — the quantity the paper's
// theorems bound. The same drivers run unchanged across real sockets:
// the service package and cmd/mpserver serve them as a networked
// estimation API. Shared randomness is free (public-coin model) and
// derived from the Seed in each option struct, making all executions
// reproducible.
//
// # Quick start
//
//	a := matprod.NewBoolMatrix(n, n) // Alice's sets, one per row
//	b := matprod.NewBoolMatrix(n, n) // Bob's sets, one per column
//	// ... fill in entries ...
//	size, cost, err := matprod.CompositionSize(a, b, matprod.LpOptions{Eps: 0.1, Seed: 1})
//	// size ≈ |A∘B| within (1±0.1); cost.Bits ≈ Õ(n/ε) vs the naive n².
//
// See the examples/ directory for runnable end-to-end scenarios and
// DESIGN.md for the architecture and the experiment-by-experiment
// mapping to the paper's theorems.
package matprod

import (
	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/intmat"
)

// Cost is the communication cost of a protocol execution: total bits
// exchanged and rounds of interaction.
type Cost = core.Cost

// Pair identifies an entry (I, J) of the product C = A·B.
type Pair = core.Pair

// WeightedPair is an entry together with an estimate of its value.
type WeightedPair = core.WeightedPair

// Option structs, re-exported from the protocol layer. Each documents its
// parameters and the constants' relation to the paper's.
type (
	// LpOptions configures EstimateLp / EstimateLpOneRound (Algorithm 1).
	LpOptions = core.LpOpts
	// L0SampleOptions configures SampleL0 (Theorem 3.2).
	L0SampleOptions = core.L0SampleOpts
	// LinfOptions configures EstimateLinf (Algorithm 2).
	LinfOptions = core.LinfOpts
	// LinfKappaOptions configures EstimateLinfKappa (Algorithm 3).
	LinfKappaOptions = core.LinfKappaOpts
	// LinfGeneralOptions configures EstimateLinfGeneral (Theorem 4.8(1)).
	LinfGeneralOptions = core.LinfGeneralOpts
	// HHOptions configures HeavyHitters (Algorithm 4).
	HHOptions = core.HHOpts
	// HHBinaryOptions configures HeavyHittersBinary (Theorem 5.3).
	HHBinaryOptions = core.HHBinaryOpts
	// MatMulOptions configures DistributedProduct (Lemma 2.5).
	MatMulOptions = core.MatMulOpts
	// ExactStats is the output of the naive baselines.
	ExactStats = core.ExactStats
)

// Errors returned by the protocols.
var (
	ErrDimensionMismatch = core.ErrDimensionMismatch
	ErrBadP              = core.ErrBadP
	ErrBadEps            = core.ErrBadEps
	ErrBadKappa          = core.ErrBadKappa
	ErrBadPhi            = core.ErrBadPhi
	ErrNeedNonNegative   = core.ErrNeedNonNegative
	ErrSampleFailed      = core.ErrSampleFailed
)

// EstimateLp is Algorithm 1 (Theorem 3.1): a two-round (1±ε)-approximation
// of ‖AB‖p^p for p ∈ [0, 2] using Õ(n/ε) bits. p = 0 estimates the
// set-intersection join size; p = 1 the natural join size; p = 2 the
// squared Frobenius norm.
func EstimateLp(a, b *IntMatrix, p float64, o LpOptions) (float64, Cost, error) {
	return core.EstimateLp(a.m, b.m, p, o)
}

// EstimateLpOneRound is the one-round Õ(n/ε²) baseline of [16] that
// Theorem 3.1 improves on: useful when a single round is a hard
// constraint, and as the comparison point for experiment E1.
func EstimateLpOneRound(a, b *IntMatrix, p float64, o LpOptions) (float64, Cost, error) {
	return core.OneRoundLp(a.m, b.m, p, o)
}

// ExactL1 is Remark 2: the exact natural-join size ‖AB‖1 for
// non-negative matrices in O(n log n) bits and one round.
func ExactL1(a, b *IntMatrix) (int64, Cost, error) {
	return core.ExactL1(a.m, b.m)
}

// SampleL1 is Remark 3: one-round ℓ1-sampling — a random entry (i, j) of
// C drawn with probability C[i][j]/‖C‖1, plus the join witness k.
func SampleL1(a, b *IntMatrix, seed uint64) (i, j, witness int, cost Cost, err error) {
	return core.SampleL1(a.m, b.m, seed)
}

// SampleL0 is Theorem 3.2: one-round ℓ0-sampling — a uniformly random
// non-zero entry of C with its exact value, in Õ(n/ε²) bits.
func SampleL0(a, b *IntMatrix, o L0SampleOptions) (Pair, int64, Cost, error) {
	return core.SampleL0(a.m, b.m, o)
}

// EstimateLinf is Algorithm 2 (Theorem 4.1): a 3-round (2+ε)-factor
// approximation of the maximum entry ‖AB‖∞ for Boolean matrices in
// Õ(n^1.5/ε) bits, together with a witnessing pair.
func EstimateLinf(a, b *BoolMatrix, o LinfOptions) (float64, Pair, Cost, error) {
	return core.EstimateLinfBinary(a.m, b.m, o)
}

// EstimateLinfKappa is Algorithm 3 (Theorem 4.3): a κ-factor
// approximation of ‖AB‖∞ for Boolean matrices in Õ(n^1.5/κ) bits.
func EstimateLinfKappa(a, b *BoolMatrix, o LinfKappaOptions) (float64, Pair, Cost, error) {
	return core.EstimateLinfKappa(a.m, b.m, o)
}

// EstimateLinfGeneral is Theorem 4.8(1): a one-round κ-factor
// approximation of ‖AB‖∞ for arbitrary integer matrices in Õ(n²/κ²)
// bits — the best possible for non-binary inputs by Theorem 4.8(2).
func EstimateLinfGeneral(a, b *IntMatrix, o LinfGeneralOptions) (float64, Cost, error) {
	return core.EstimateLinfGeneral(a.m, b.m, o)
}

// HeavyHitters is Algorithm 4 (Theorem 5.1 / Corollary 5.2): the
// ℓp-(ϕ,ε)-heavy-hitters of AB for integer matrices in Õ(√ϕ/ε·n) bits.
// The output S satisfies HH_ϕ(AB) ⊆ S ⊆ HH_{ϕ−ε}(AB) with constant
// probability.
func HeavyHitters(a, b *IntMatrix, o HHOptions) ([]WeightedPair, Cost, error) {
	return core.HeavyHitters(a.m, b.m, o)
}

// HeavyHittersBinary is the Section 5.2 protocol (Theorem 5.3): heavy
// hitters for Boolean matrices in Õ(n + ϕ/ε²) bits.
func HeavyHittersBinary(a, b *BoolMatrix, o HHBinaryOptions) ([]WeightedPair, Cost, error) {
	return core.HeavyHittersBinary(a.m, b.m, o)
}

// DistributedProduct is Lemma 2.5: Alice and Bob recover CA + CB = A·B
// for a product known to have at most o.Sparsity non-zero entries, in
// Õ(n·√‖AB‖0) bits.
func DistributedProduct(a, b *IntMatrix, o MatMulOptions) (ca, cb *IntMatrix, cost Cost, err error) {
	mca, mcb, cost, err := core.DistributedProduct(a.m, b.m, o)
	if err != nil {
		return nil, nil, cost, err
	}
	return &IntMatrix{m: mca}, &IntMatrix{m: mcb}, cost, nil
}

// NaiveExact ships Alice's entire Boolean matrix and computes every
// statistic exactly — the trivial baseline all protocols are measured
// against.
func NaiveExact(a, b *BoolMatrix) (ExactStats, Cost, error) {
	return core.NaiveBinary(a.m, b.m)
}

// NaiveExactInt is NaiveExact for integer matrices.
func NaiveExactInt(a, b *IntMatrix) (ExactStats, Cost, error) {
	return core.NaiveInt(a.m, b.m)
}

// internal accessors for sibling files in this package.
func boolMat(m *bitmat.Matrix) *BoolMatrix { return &BoolMatrix{m: m} }
func intMat(m *intmat.Dense) *IntMatrix    { return &IntMatrix{m: m} }
